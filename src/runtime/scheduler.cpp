#include "runtime/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/logging.hpp"
#include "datasets/synthetic.hpp"
#include "nn/executor.hpp"
#include "sim/accelerator.hpp"

namespace pointacc {

// ---------------------------------------------------------------- //
//                          ServiceModel                             //
// ---------------------------------------------------------------- //

namespace {
constexpr std::uint64_t kNoShared =
    std::numeric_limits<std::uint64_t>::max();

/** Incremental FNV-1a, the repository-portable content hash. */
struct Fnv1a
{
    std::uint64_t h = 1469598103934665603ULL;

    void
    mixByte(std::uint8_t b)
    {
        h ^= b;
        h *= 1099511628211ULL;
    }

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            mixByte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    mix(const std::string &s)
    {
        mix(static_cast<std::uint64_t>(s.size()));
        for (const char c : s)
            mixByte(static_cast<std::uint8_t>(c));
    }
};
} // namespace

std::uint64_t
ServiceModel::layerConfigHash(std::uint32_t network_id) const
{
    // Fixed test tables have no layer structure: the id is the whole
    // configuration. Mix it so distinct ids land far apart.
    Fnv1a f;
    f.mix(static_cast<std::uint64_t>(network_id));
    return f.h;
}

std::uint64_t
cyclesToNs(std::uint64_t cycles, double freq_ghz)
{
    // 1 GHz is the identity by construction, not by arithmetic: the
    // differential gates compare the ns engine byte-for-byte against
    // the cycle-domain reference, so the uniform-frequency path must
    // be exempt from any floating-point round trip.
    if (freq_ghz == 1.0)
        return cycles;
    return static_cast<std::uint64_t>(
        std::llround(static_cast<double>(cycles) / freq_ghz));
}

PhaseProfile
phasesToNs(const PhaseProfile &phases, double freq_ghz)
{
    PhaseProfile ns;
    const std::uint64_t totalNs = cyclesToNs(phases.total(), freq_ghz);
    ns.mapCycles = std::min(cyclesToNs(phases.mapCycles, freq_ghz),
                            totalNs);
    ns.backendCycles = totalNs - ns.mapCycles;
    return ns;
}

std::uint64_t
ServiceModel::batchServiceCycles(const AcceleratorConfig &cfg,
                                 const Batch &batch) const
{
    simAssert(!batch.empty(), "batch must not be empty");
    std::uint64_t sum = 0;
    std::uint64_t longest = 0;
    std::uint64_t shared = kNoShared;
    for (const auto &r : batch.requests) {
        const auto p = profile(cfg, r.networkId, r.sizeBucket);
        sum += p.totalCycles;
        longest = std::max(longest, p.totalCycles);
        // Same network across the batch => same parameter set. The
        // profiled weight-load time can differ per size bucket (it is
        // capped at that bucket's run length), so credit the smallest
        // member's value: never overcredit, and the price of a batch
        // does not depend on member order.
        shared = std::min(shared, p.weightLoadCycles);
    }
    const std::uint64_t saved =
        shared * static_cast<std::uint64_t>(batch.size() - 1);
    return std::max(longest, sum > saved ? sum - saved : longest);
}

PhaseProfile
ServiceModel::batchPhases(const AcceleratorConfig &cfg,
                          const Batch &batch) const
{
    const std::uint64_t total = batchServiceCycles(cfg, batch);
    std::uint64_t mapSum = 0;
    for (const auto &r : batch.requests)
        mapSum +=
            profile(cfg, r.networkId, r.sizeBucket).phases().mapCycles;
    // Mapping never amortizes (each member's cloud maps separately),
    // but the weight credit can shrink the total below sum-of-parts;
    // clamp so the phases still partition the batch price exactly.
    PhaseProfile p;
    p.mapCycles = std::min(mapSum, total);
    p.backendCycles = total - p.mapCycles;
    return p;
}

SimServiceModel::SimServiceModel(ServingCatalog catalog)
    : cat(std::move(catalog))
{
    if (cat.networks.empty())
        fatal("serving catalog needs at least one network");
    if (cat.bucketScales.empty())
        fatal("serving catalog needs at least one size bucket");
    for (const double s : cat.bucketScales)
        if (s <= 0.0)
            fatal("size bucket scales must be positive");
}

const PointCloud &
SimServiceModel::cloudFor(std::uint32_t network_id,
                          std::uint32_t bucket) const
{
    const auto key = std::make_pair(network_id, bucket);
    auto it = clouds.find(key);
    if (it == clouds.end()) {
        const auto &net = cat.networks[network_id];
        it = clouds
                 .emplace(key, generate(net.dataset, cat.cloudSeed,
                                        cat.bucketScales[bucket]))
                 .first;
    }
    return it->second;
}

ServiceProfile
SimServiceModel::profile(const AcceleratorConfig &cfg,
                         std::uint32_t network_id,
                         std::uint32_t bucket) const
{
    simAssert(network_id < cat.networks.size(),
              "network id outside the serving catalog");
    simAssert(bucket < cat.bucketScales.size(),
              "size bucket outside the serving catalog");
    const Key key{cfg.name, network_id, bucket};
    // Fast path: the triple is already profiled. Concurrent probes
    // hit this read-side lock on every dispatch, so it must stay
    // shared (never exclusive) once the memo is warm.
    {
        std::shared_lock<std::shared_mutex> lock(memoMutex);
        const auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }

    // Slow path: first profile of this triple. Take the exclusive
    // lock and re-check — two threads can both miss the shared-lock
    // lookup, and only the first to get here may simulate (the meter
    // counts real simulator runs, one per distinct triple).
    std::unique_lock<std::shared_mutex> lock(memoMutex);
    const auto again = cache.find(key);
    if (again != cache.end())
        return again->second;

    const auto &net = cat.networks[network_id];
    const auto &cloud = cloudFor(network_id, bucket);

    Accelerator accel(cfg);
    const RunResult r = accel.run(net, cloud);
    numProfiledRuns += 1;

    // Parameter bytes are a property of the network alone; cache the
    // workload summary across accelerator classes.
    const auto wkey = std::make_pair(network_id, bucket);
    auto wit = weightBytes.find(wkey);
    if (wit == weightBytes.end()) {
        const auto summary = summarizeWorkload(net, cloud);
        wit = weightBytes.emplace(wkey, summary.weightBytes).first;
    }

    ServiceProfile p;
    p.totalCycles = std::max<std::uint64_t>(r.totalCycles, 1);
    p.mappingCycles = r.mappingCycles;
    p.computeCycles = r.computeCycles;
    // Kernel-map footprint: one (input, output) index pair per map
    // entry — what a map-cache hit avoids recomputing and what the
    // cache's bytes-saved counter meters.
    for (const auto &layer : r.layers)
        p.mapBytes += layer.maps * 8;
    // Weight streaming time at this accelerator's DRAM bandwidth:
    // bytes / (GB/s) = ns, times GHz = cycles. Never credit more than
    // the whole run.
    const double ns = static_cast<double>(wit->second) /
                      std::max(cfg.dram.bandwidthGBps, 1e-9);
    p.weightLoadCycles = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(ns * cfg.freqGHz), p.totalCycles);
    cache.emplace(key, p);
    return p;
}

std::uint64_t
SimServiceModel::layerConfigHash(std::uint32_t network_id) const
{
    simAssert(network_id < cat.networks.size(),
              "network id outside the serving catalog");
    // Fingerprint of the layer stack: kind, name and order of every
    // layer plus the global shape knobs. Enough to distinguish every
    // zoo network and any edited variant; not a deep parameter hash.
    const auto &net = cat.networks[network_id];
    Fnv1a f;
    f.mix(net.name);
    f.mix(net.notation);
    f.mix(static_cast<std::uint64_t>(net.inputChannels));
    f.mix(static_cast<std::uint64_t>(net.convClass));
    f.mix(static_cast<std::uint64_t>(net.layers.size()));
    for (const auto &layer : net.layers) {
        f.mix(layer.name);
        f.mix(static_cast<std::uint64_t>(layer.desc.index()));
    }
    return f.h;
}

// ---------------------------------------------------------------- //
//                         FleetScheduler                            //
// ---------------------------------------------------------------- //

FleetScheduler::FleetScheduler(std::vector<AcceleratorConfig> fleet_,
                               const ServiceModel &model_,
                               std::vector<double> bucket_scales,
                               SchedulerConfig config)
    : fleet(std::move(fleet_)), model(model_),
      bucketScales(std::move(bucket_scales)), cfg(config)
{
    if (fleet.empty())
        fatal("fleet needs at least one accelerator");
    // Resolve the autoscaler config against the concrete fleet now so
    // a bad policy (floor above ceiling, ceiling above the fleet)
    // fails at construction, not mid-simulation.
    if (cfg.autoscaler.enabled)
        cfg.autoscaler =
            resolveAutoscalerConfig(cfg.autoscaler, fleet.size());
    // The fault program and retry policy fail fast the same way
    // (mirroring validateWorkloadSpec): malformed inputs throw
    // std::invalid_argument at construction, never mid-simulation.
    // Both validate vacuously when disabled.
    validateFaultProgram(cfg.faults);
    validateRetryPolicy(cfg.retry);
    if (cfg.runAheadDepth < 1)
        fatal("runAheadDepth must be >= 1 (1 is the blocking handoff)");
    for (const auto &acc : fleet) {
        // Frequencies may differ across members (each instance's
        // profiled cycles convert to the ns event axis at dispatch),
        // but every frequency must be a real clock.
        if (!(acc.freqGHz > 0.0))
            fatal("fleet members need a positive clock frequency");
        // Service profiles and converted phase splits are memoized per
        // config *name*; two members sharing a name but differing in
        // the fields that drive cost (frequency included) would
        // silently share wrong prices.
        for (const auto &other : fleet) {
            if (acc.name != other.name)
                continue;
            const bool same =
                acc.freqGHz == other.freqGHz &&
                acc.mxu.rows == other.mxu.rows &&
                acc.mxu.cols == other.mxu.cols &&
                acc.mpu.mergerWidth == other.mpu.mergerWidth &&
                acc.inputBufferKB == other.inputBufferKB &&
                acc.weightBufferKB == other.weightBufferKB &&
                acc.outputBufferKB == other.outputBufferKB &&
                acc.sorterBufferKB == other.sorterBufferKB &&
                acc.dram.name == other.dram.name &&
                acc.dram.bandwidthGBps == other.dram.bandwidthGBps;
            if (!same)
                fatal("fleet members named '" + acc.name +
                      "' have different configurations; give them "
                      "distinct names");
        }
    }
}

std::string
toString(OccupancyModel model)
{
    switch (model) {
      case OccupancyModel::Monolithic: return "monolithic";
      case OccupancyModel::Pipelined: return "pipelined";
    }
    return "?";
}

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint32_t kNoInstance =
    std::numeric_limits<std::uint32_t>::max();
/** Hedged duplicates carry the original id with this bit set, so the
 *  admission queue's id-uniqueness invariant survives a duplicate and
 *  its (retried) original being queued at once. Generator ids are
 *  dense from 0 and never reach the bit. */
constexpr std::uint64_t kHedgeIdBit = 1ULL << 63;

/** One dispatch resident on an instance, in either pipeline stage. */
struct InFlight
{
    Batch batch;
    PhaseProfile phases;
    std::uint64_t dispatchedAt = 0;
    std::uint64_t mapDoneAt = 0; ///< front-end (mapping) completion
    std::uint64_t doneAt = 0;    ///< back-end completion (set at handoff)
    /** Front-end done; waiting for the back-end to free (blocking
     *  handoff: the mapped batch keeps occupying the front stage). */
    bool mapped = false;
    /** Map-cache entries this (miss) dispatch publishes when its
     *  mapping phase completes — maps exist only once mapped. */
    std::vector<std::pair<MapCacheKey, MapCacheEntry>> inserts;
};

/** Autoscaler lifecycle of one instance. Without the autoscaler every
 *  instance is Active forever (byte-identical legacy behavior). */
enum class Life : std::uint8_t
{
    Active,     ///< powered, accepting dispatches
    SpinningUp, ///< powered (burning cycles) but not yet accepting
    Draining,   ///< powered, finishing in-flight work, accepting nothing
    Off,        ///< unpowered
};

/**
 * One accelerator as a two-stage pipeline: the front slot is the
 * Mapping Unit (a batch occupies it from dispatch until the back-end
 * accepts it), the back slot is the Matrix Unit + memory system. The
 * monolithic occupancy model uses the same machinery with a
 * zero-length map phase and admission gated on full idleness.
 *
 * frontStamp/backStamp are lazy-invalidation generations for the
 * global event heap: each (re)fill of a slot bumps its stamp, so a
 * heap entry for a slot that has since emptied or been refilled is
 * recognized as stale when popped and discarded. lifeStamp plays the
 * same role for SpinUp events (a scale-down that cancels a pending
 * spin-up orphans its event).
 */
struct AccelState
{
    std::optional<InFlight> front;
    /** Run-ahead staging FIFO (capacity runAheadDepth - 1): mapped
     *  batches the front-end finished while the back-end was still
     *  busy, queued in mapping-completion order for promotion as the
     *  back-end drains. Empty forever at the default depth 1, where
     *  the handoff blocks exactly as the frozen reference engine's
     *  does. Staged batches hold no pending heap events (their
     *  MapDone fired before parking; their RunDone is pushed at
     *  promotion), so no stamp guards them. */
    std::deque<InFlight> staged;
    std::optional<InFlight> back;
    std::uint64_t frontStamp = 0;
    std::uint64_t backStamp = 0;
    /** High-water mark for busy-interval union accounting: per-batch
     *  residency intervals overlap under pipelining, and utilization
     *  must count wall-clock coverage, not summed service. */
    std::uint64_t coveredUntil = 0;
    AcceleratorUsage usage;
    Life life = Life::Active;
    std::uint64_t lifeStamp = 0;
    /** Crashed by the fault program: accepts nothing until the
     *  matching Recover event. Independent of Life — a crash is a
     *  failure, not an autoscaler decision (though with the
     *  autoscaler on, a crash also powers the instance off so the
     *  policy sees the capacity loss and replaces it). */
    bool crashed = false;
    /** Straggler service-time stretch for new dispatches; exactly 1.0
     *  outside windows, so fault-free pricing skips the float round
     *  trip (the byte-identity gates rely on the == test). */
    double slowdown = 1.0;

    bool
    canAccept(OccupancyModel model) const
    {
        if (crashed)
            return false;
        if (life != Life::Active)
            return false;
        return model == OccupancyModel::Pipelined
                   ? !front.has_value()
                   : !front.has_value() && !back.has_value();
    }
};

/**
 * Global event-heap entry. The discrete-event core replaced the seed
 * loop's per-iteration rescan of every instance with one binary
 * min-heap over four event kinds; entries are sequence-numbered (push
 * order) so heap ordering is total, and carry the stamp of the slot
 * or timer generation they describe for lazy invalidation.
 */
struct Event
{
    enum class Kind : std::uint8_t
    {
        MapDone,   ///< a front slot's mapping phase completes
        RunDone,   ///< a back slot's service completes
        Timer,     ///< earliest wait-for-K hold deadline
        Arrival,   ///< the source's next request arrives
        ScaleEval, ///< periodic autoscaler policy evaluation
        SpinUp,    ///< a powering-on instance becomes Active
        Fault,     ///< a materialized fault event fires (runtime/faults)
        Retry,     ///< a crash victim's backoff expired; re-admit it
        Hedge,     ///< hedge delay expired; duplicate the request
    };

    std::uint64_t at = 0;
    std::uint64_t seq = 0;
    Kind kind = Kind::Arrival;
    std::uint32_t accel = 0;
    std::uint64_t stamp = 0;
};

struct EventLater
{
    bool
    operator()(const Event &a, const Event &b) const
    {
        return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
};

} // namespace

ServingReport
FleetScheduler::run(std::vector<Request> arrivals) const
{
    std::stable_sort(arrivals.begin(), arrivals.end(), arrivalOrderBefore);
    VectorRequestSource source(std::move(arrivals));
    return run(source);
}

ServingReport
FleetScheduler::run(RequestSource &source) const
{
    ServingReport report;
    report.freqGHz = fleet.front().freqGHz;
    report.occupancy = toString(cfg.occupancy);
    report.runAheadDepth = cfg.runAheadDepth;
    report.costAware = cfg.batcher.costAware;

    AdmissionQueue queue(cfg.queueDepth);
    Batcher batcher(cfg.batcher, bucketScales);

    // Cross-request kernel-map cache. Keys memoize the per-network
    // layer-config hash; lookups classify requests as hits or misses
    // *at dispatch time* (cache contents evolve as misses publish).
    MapCache mapCache(cfg.mapCache);
    std::map<std::uint32_t, std::uint64_t> layerHashes;
    const auto keyOf = [&](const Request &r) {
        auto it = layerHashes.find(r.networkId);
        if (it == layerHashes.end())
            it = layerHashes
                     .emplace(r.networkId,
                              model.layerConfigHash(r.networkId))
                     .first;
        return MapCacheKey{r.cloudId, r.networkId, it->second};
    };
    if (mapCache.enabled()) {
        // A hit's collapsed map phase and a miss's full mapping can
        // never share one dispatch price: keep batches hit-pure or
        // miss-pure (evaluated against the cache state at decision
        // time, like every other compatibility check).
        batcher.setExtraCompatibility(
            [&](const Request &a, const Request &b) {
                return mapCache.contains(keyOf(a)) ==
                       mapCache.contains(keyOf(b));
            });
    }

    std::vector<AccelState> accels(fleet.size());
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        accels[i].usage.name =
            fleet[i].name + "#" + std::to_string(i);
        accels[i].usage.freqGHz = fleet[i].freqGHz;
    }

    // ---- Reactive autoscaling (runtime/autoscaler) ---------------- //
    // Disabled (the default): every instance stays Active and none of
    // this code runs — the event stream and report are byte-identical
    // to pre-autoscaler builds. Enabled: the configured fleet is the
    // *pool*; only instances the policy has powered serve.
    const AutoscalerConfig &asCfg = cfg.autoscaler;
    const bool asEnabled = asCfg.enabled;
    AutoscalerPolicy policy(asCfg);
    AutoscalerStats asStats;
    std::uint64_t evalGen = 0;
    // Powered-instance integral: instanceCycles accumulates
    // poweredCount * elapsed at every power transition. Spin-up and
    // drain both count — they burn power without serving, which is
    // exactly the reactive-scaling cost the traffic gate measures.
    std::uint32_t poweredCount = 0;
    std::uint64_t lastPowerChange = 0;
    const auto notePower = [&](std::uint64_t now, int delta) {
        asStats.instanceCycles +=
            static_cast<std::uint64_t>(poweredCount) *
            (now - lastPowerChange);
        lastPowerChange = now;
        poweredCount = static_cast<std::uint32_t>(
            static_cast<int>(poweredCount) + delta);
    };
    // What the policy sees as capacity: powered instances that are not
    // on their way out (a draining instance no longer absorbs load).
    const auto decisionProvisioned = [&]() {
        std::uint32_t n = 0;
        for (const auto &a : accels)
            if (a.life == Life::Active || a.life == Life::SpinningUp)
                n += 1;
        return n;
    };
    // Completion latencies since the last evaluation — the windowed
    // p99 signal.
    std::vector<std::uint64_t> windowLat;
    if (asEnabled) {
        for (std::size_t i = asCfg.initialInstances; i < accels.size();
             ++i)
            accels[i].life = Life::Off;
        poweredCount = asCfg.initialInstances;
        asStats.peakProvisioned = asCfg.initialInstances;
    }

    // ---- Fault injection (runtime/faults) ------------------------- //
    // Inactive (the default, or an enabled program that materializes
    // no events with retries off): nothing enters the heap, no
    // per-request state is consulted, and the run stays byte-identical
    // to a fault-free build — the --sweep faults gate pins that
    // against the frozen reference engine.
    const RetryPolicy &retry = cfg.retry;
    const std::vector<FaultEvent> faultEvents =
        materializeFaultEvents(cfg.faults, fleet.size());
    const bool faultsOn = !faultEvents.empty() || retry.enabled;
    FaultStats fstats;
    fstats.enabled = faultsOn;
    // Per-request fault state, created lazily for crash victims and
    // hedged requests only (the common unfaulted request never touches
    // the map). Keyed by the original id (hedge duplicates strip
    // kHedgeIdBit): `done` marks the winning completion so a losing
    // copy can never complete a request twice, `failed` the terminal
    // failure, `crashedOn` the instance whose crash last killed it
    // (completing elsewhere is a counted failover).
    struct ReqFaultState
    {
        bool done = false;
        bool failed = false;
        bool hedged = false;
        std::uint32_t crashedOn = kNoInstance;
    };
    std::unordered_map<std::uint64_t, ReqFaultState> rstate;
    const auto origId = [](const Request &r) {
        return r.hedge ? (r.id & ~kHedgeIdBit) : r.id;
    };
    std::vector<Request> retrySlots; // Retry event stamp -> request
    std::vector<Request> hedgeSlots; // Hedge event stamp -> duplicate
    std::uint64_t pendingRetries = 0; // scheduled, not yet re-admitted
    std::uint64_t hedgedInQueue = 0;  // duplicates sitting in admission

    // Accelerator class per instance: the index of the first fleet
    // member with the same config name. Dispatch prices a batch once
    // per class (the seed keyed the same memo by name strings).
    std::vector<std::size_t> classOf(fleet.size());
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        classOf[i] = i;
        for (std::size_t j = 0; j < i; ++j) {
            if (fleet[j].name == fleet[i].name) {
                classOf[i] = j;
                break;
            }
        }
    }

    // SJF/EDF estimates are priced against the lead accelerator, in ns
    // on the event axis; on a heterogeneous fleet relative job
    // ordering is what matters, and network cost ratios are stable
    // across classes.
    const AcceleratorConfig &reference = fleet.front();
    // Admission estimate per (network, bucket): the profile call is
    // deterministic, so memoizing it against the reference instance
    // keeps per-arrival admission O(log classes).
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
        estCache;
    const auto estimateOf = [&](const Request &r) {
        const auto key = std::make_pair(r.networkId, r.sizeBucket);
        auto it = estCache.find(key);
        if (it == estCache.end())
            it = estCache
                     .emplace(key,
                              cyclesToNs(model
                                             .profile(reference,
                                                      r.networkId,
                                                      r.sizeBucket)
                                             .totalCycles,
                                         reference.freqGHz))
                     .first;
        return it->second;
    };

    // ---- Cost-aware dispatch (BatcherConfig::costAware) ----------- //
    // Off (the default): none of this state is touched and the run
    // stays byte-identical to the frozen reference engine. On: each
    // hold decision is priced (Batcher::costAwareHold) from three
    // simulator facts — the head's class prices, the head network's
    // observed arrival cadence, and the back-end backlog of the
    // least-loaded accepting instance.
    const bool costAwareOn = cfg.batcher.enabled &&
                             cfg.batcher.costAware &&
                             cfg.batcher.targetK > 1;
    struct ArrivalCadence
    {
        std::uint64_t count = 0;
        std::uint64_t firstNs = 0;
        std::uint64_t lastNs = 0;
    };
    std::map<std::uint32_t, ArrivalCadence> cadence;
    const auto noteArrival = [&](const Request &r) {
        ArrivalCadence &c = cadence[r.networkId];
        if (c.count == 0)
            c.firstNs = r.arrivalCycle;
        c.lastNs = r.arrivalCycle;
        c.count += 1;
    };
    // Mean inter-arrival gap of one network's requests; 0 until two
    // arrivals have been seen (no cadence, no priced hold).
    const auto gapOf = [&](std::uint32_t network_id) -> std::uint64_t {
        const auto it = cadence.find(network_id);
        if (it == cadence.end() || it->second.count < 2)
            return 0;
        return (it->second.lastNs - it->second.firstNs) /
               (it->second.count - 1);
    };
    // Weight-reload and mapping prices per (network, bucket), against
    // the reference instance like the SJF/EDF estimates — the decision
    // compares magnitudes, and cost ratios are stable across classes.
    struct ClassPrice
    {
        std::uint64_t weightLoadNs = 0;
        std::uint64_t mapNs = 0;
    };
    std::map<std::pair<std::uint32_t, std::uint32_t>, ClassPrice>
        priceCache;
    const auto priceOf = [&](const Request &r) {
        const auto key = std::make_pair(r.networkId, r.sizeBucket);
        auto it = priceCache.find(key);
        if (it == priceCache.end()) {
            const auto p =
                model.profile(reference, r.networkId, r.sizeBucket);
            it = priceCache
                     .emplace(key,
                              ClassPrice{
                                  cyclesToNs(p.weightLoadCycles,
                                             reference.freqGHz),
                                  cyclesToNs(p.phases().mapCycles,
                                             reference.freqGHz)})
                     .first;
        }
        return it->second;
    };

    // The global event heap (arrivals, map-done, run-done, batch-hold
    // timer) with lazy invalidation; see Event above. Replaces the
    // seed loop's per-iteration rescan of every instance.
    std::priority_queue<Event, std::vector<Event>, EventLater> events;
    std::uint64_t evSeq = 0;
    const auto pushEv = [&](std::uint64_t at, Event::Kind kind,
                            std::uint32_t accel, std::uint64_t stamp) {
        events.push(Event{at, ++evSeq, kind, accel, stamp});
    };

    // Batcher timer: earliest pending wait-for-K hold deadline.
    // timerGen stamps the currently armed timer event; re-arming or
    // disarming bumps it, orphaning any queued timer entry.
    std::uint64_t timerAt = kNever;
    std::uint64_t timerGen = 0;
    std::uint64_t armedAt = kNever;
    const auto syncTimer = [&]() {
        if (timerAt == armedAt)
            return;
        timerGen += 1;
        armedAt = timerAt;
        if (timerAt != kNever)
            pushEv(timerAt, Event::Kind::Timer, 0, timerGen);
    };
    // Leaders whose hold episodes were already counted in batchHolds
    // (one episode per leader, however many events re-evaluate it).
    std::unordered_set<std::uint64_t> countedHolds;

    const auto completeBack = [&](std::size_t idx) {
        AccelState &acc = accels[idx];
        const InFlight &unit = *acc.back;
        // Monolithic runs are one opaque interval — there is no
        // mapping-completion moment inside it to observe, so a miss's
        // kernel maps publish only when the whole run finishes (the
        // pipelined model publishes at map-phase completion instead,
        // where the maps physically first exist).
        if (cfg.occupancy == OccupancyModel::Monolithic)
            for (const auto &ins : unit.inserts)
                mapCache.insert(ins.first, ins.second);
        for (const auto &r : unit.batch.requests) {
            if (faultsOn) {
                const auto it = rstate.find(origId(r));
                if (it != rstate.end()) {
                    ReqFaultState &st = it->second;
                    if (st.done || st.failed) {
                        // The race's loser (or a copy of a request
                        // already declared failed): record only the
                        // wasted hedge, never a second completion.
                        if (r.hedge)
                            fstats.hedgesLost += 1;
                        continue;
                    }
                    st.done = true;
                    if (r.hedge)
                        fstats.hedgesWon += 1;
                    if (st.crashedOn != kNoInstance &&
                        st.crashedOn != static_cast<std::uint32_t>(idx))
                        fstats.failovers += 1;
                }
            }
            report.latencyCycles.record(
                static_cast<double>(unit.doneAt - r.arrivalCycle));
            report.completionCycles.push_back(unit.doneAt);
            if (r.deadlineCycle > 0 && unit.doneAt > r.deadlineCycle)
                report.deadlineMisses += 1;
            report.completed += 1;
            if (asEnabled)
                windowLat.push_back(unit.doneAt - r.arrivalCycle);
        }
        // Graceful drain made countable: work finished by an instance
        // that was already decommissioned when it completed.
        if (asEnabled && acc.life == Life::Draining)
            asStats.drainedBatches += 1;
        // Busy-interval union: residency intervals arrive in
        // nondecreasing start order (the pipeline is FIFO per
        // instance), so a running high-water mark suffices.
        const std::uint64_t start =
            std::max(unit.dispatchedAt, acc.coveredUntil);
        if (unit.doneAt > start)
            acc.usage.busyCycles += unit.doneAt - start;
        acc.coveredUntil = std::max(acc.coveredUntil, unit.doneAt);
        acc.back.reset();
    };

    // Start a batch on the empty back-end at `now` — the moment the
    // handoff (or staged promotion) became possible is itself an
    // event, so `now` is exactly the back-end start.
    const auto startBack = [&](std::size_t idx, InFlight unit,
                               std::uint64_t now) {
        AccelState &acc = accels[idx];
        unit.doneAt = now + unit.phases.backendCycles;
        acc.usage.backendBusyCycles += unit.phases.backendCycles;
        acc.backStamp += 1;
        if (unit.doneAt > now)
            pushEv(unit.doneAt, Event::Kind::RunDone,
                   static_cast<std::uint32_t>(idx), acc.backStamp);
        acc.back.emplace(std::move(unit));
    };

    // Staging-FIFO capacity: runAheadDepth - 1 mapped batches may park
    // between the stages under Pipelined occupancy (Monolithic never
    // overlaps stages, so its buffer is always 0 — same as depth 1).
    const std::size_t stagedCap =
        cfg.occupancy == OccupancyModel::Pipelined
            ? static_cast<std::size_t>(cfg.runAheadDepth) - 1
            : 0;

    // Apply every stage transition due at `now` on one instance:
    // back-end completions, staged run-ahead promotions, then the
    // front->back handoff (which may itself complete immediately when
    // a back-end phase is empty). Transitions landing strictly in the
    // future enqueue heap events; same-cycle ones cascade right here,
    // so every pending transition always has a live heap entry or
    // resolves synchronously.
    const auto service = [&](std::size_t idx, std::uint64_t now) {
        AccelState &acc = accels[idx];
        for (;;) {
            if (acc.back && acc.back->doneAt <= now) {
                completeBack(idx);
                continue;
            }
            // Promote from the staging FIFO first: staged batches
            // finished mapping before anything still in the front
            // slot, and the back-end serves in dispatch order.
            if (!acc.back && !acc.staged.empty()) {
                InFlight unit = std::move(acc.staged.front());
                acc.staged.pop_front();
                startBack(idx, std::move(unit), now);
                continue;
            }
            if (acc.front && acc.front->mapDoneAt <= now) {
                // Mapping just finished: a miss dispatch publishes its
                // kernel maps now — later same-cycle dispatches may
                // already hit them. (Monolithic dispatches have an
                // empty map phase; their maps publish at run
                // completion instead — see completeBack.)
                if (!acc.front->mapped &&
                    cfg.occupancy == OccupancyModel::Pipelined)
                    for (const auto &ins : acc.front->inserts)
                        mapCache.insert(ins.first, ins.second);
                acc.front->mapped = true;
                if (!acc.back) {
                    // The staged FIFO is empty here (promotion above
                    // ran first): direct handoff, the depth-1 path.
                    InFlight unit = std::move(*acc.front);
                    acc.front.reset();
                    startBack(idx, std::move(unit), now);
                    continue;
                }
                if (acc.staged.size() < stagedCap) {
                    // Run ahead: park the mapped batch and free the
                    // front slot — the Mapping Unit may accept the
                    // next dispatch while the back-end works through
                    // its backlog.
                    acc.staged.push_back(std::move(*acc.front));
                    acc.front.reset();
                    report.runAheadStaged += 1;
                    report.runAheadPeakStaged =
                        std::max(report.runAheadPeakStaged,
                                 static_cast<std::uint64_t>(
                                     acc.staged.size()));
                    continue;
                }
            }
            break;
        }
        // A draining instance powers off the moment its pipeline
        // empties — graceful drain complete, every in-flight batch
        // finished and recorded.
        if (asEnabled && acc.life == Life::Draining && !acc.front &&
            acc.staged.empty() && !acc.back) {
            acc.life = Life::Off;
            notePower(now, -1);
        }
    };

    // Exact completion time of `ph` were it dispatched to `acc` now:
    // mapping starts immediately (the front slot is free by
    // precondition), the back-end starts at the later of mapping
    // completion and the back-end's committed backlog draining — the
    // running batch's remainder plus every staged run-ahead batch
    // (the FIFO serves strictly before a new dispatch can).
    const auto estimateDone = [](const AccelState &acc,
                                 const PhaseProfile &ph,
                                 std::uint64_t now) {
        const std::uint64_t mapDone = now + ph.mapCycles;
        std::uint64_t backFree = acc.back ? acc.back->doneAt : now;
        for (const auto &s : acc.staged)
            backFree += s.phases.backendCycles;
        const std::uint64_t backStart = std::max(mapDone, backFree);
        return backStart + ph.backendCycles;
    };

    // A crash just killed `r` mid-flight on `inst`: route it through
    // the retry policy (bounded, exponential backoff priced in ns) or
    // record the terminal failure. Hedged duplicates get no second
    // chance — the original (or its own retry chain) is still the
    // request of record.
    const auto failRequest = [&](const Request &r, std::uint32_t inst,
                                 std::uint64_t now) {
        if (r.hedge) {
            fstats.hedgesLost += 1;
            return;
        }
        ReqFaultState &st = rstate[r.id];
        if (st.done)
            return; // a hedge copy already completed it
        st.crashedOn = inst;
        fstats.inflightFailed += 1;
        bool timedOut = false;
        if (retry.enabled && r.attempt < retry.maxRetries) {
            const std::uint64_t backoff = retryBackoffNs(retry, r.attempt);
            if (retry.timeoutNs > 0 &&
                now + backoff > r.arrivalCycle + retry.timeoutNs) {
                timedOut = true; // the wait alone would blow the budget
            } else {
                Request again = r;
                again.attempt += 1;
                retrySlots.push_back(again);
                pendingRetries += 1;
                fstats.retryAttempts += 1;
                fstats.retryBackoffNsTotal += backoff;
                pushEv(now + backoff, Event::Kind::Retry, 0,
                       retrySlots.size() - 1);
                return;
            }
        }
        st.failed = true;
        report.failed += 1;
        if (timedOut)
            fstats.retryTimeouts += 1;
        else if (retry.enabled)
            fstats.retryExhausted += 1;
    };

    // Apply one materialized fault event. Crash: both in-flight
    // batches on the instance die — the busy counters give back the
    // un-run remainders (so per-stage busy never exceeds the horizon),
    // the residency union closes at the crash instant, victims route
    // through the retry policy, and the slot stamps orphan any pending
    // MapDone/RunDone heap entries. A batch completing at the crash
    // instant completes: the service sweep runs before faults apply.
    const auto applyFault = [&](const FaultEvent &f, std::uint64_t now) {
        AccelState &a = accels[f.instance];
        switch (f.kind) {
          case FaultEventKind::Crash: {
            if (a.crashed)
                return; // overlapping outages coalesce
            a.crashed = true;
            fstats.crashes += 1;
            if (a.back) {
                const InFlight &u = *a.back;
                fstats.failedBatches += 1;
                if (u.doneAt > now)
                    a.usage.backendBusyCycles -= u.doneAt - now;
                const std::uint64_t start =
                    std::max(u.dispatchedAt, a.coveredUntil);
                if (now > start)
                    a.usage.busyCycles += now - start;
                a.coveredUntil = std::max(a.coveredUntil, now);
                for (const auto &r : u.batch.requests)
                    failRequest(r, f.instance, now);
                a.back.reset();
                a.backStamp += 1;
            }
            while (!a.staged.empty()) {
                // Staged run-ahead batches mapped to completion (their
                // map busy time is honest) and never started the
                // back-end (nothing to give back there): only their
                // residency closes out at the crash instant. FIFO
                // order keeps the dispatch-order residency invariant.
                const InFlight &u = a.staged.front();
                fstats.failedBatches += 1;
                const std::uint64_t start =
                    std::max(u.dispatchedAt, a.coveredUntil);
                if (now > start)
                    a.usage.busyCycles += now - start;
                a.coveredUntil = std::max(a.coveredUntil, now);
                for (const auto &r : u.batch.requests)
                    failRequest(r, f.instance, now);
                a.staged.pop_front();
            }
            if (a.front) {
                const InFlight &u = *a.front;
                fstats.failedBatches += 1;
                // An unmapped front gives back its un-run mapping; a
                // mapped one (blocked on handoff) ran it all, and its
                // back-end never started, so nothing else to return.
                if (!u.mapped && u.mapDoneAt > now)
                    a.usage.mapBusyCycles -= u.mapDoneAt - now;
                const std::uint64_t start =
                    std::max(u.dispatchedAt, a.coveredUntil);
                if (now > start)
                    a.usage.busyCycles += now - start;
                a.coveredUntil = std::max(a.coveredUntil, now);
                for (const auto &r : u.batch.requests)
                    failRequest(r, f.instance, now);
                a.front.reset();
                a.frontStamp += 1;
            }
            // With the autoscaler on, a crash is a power loss: the
            // policy sees provisioned capacity drop, and its existing
            // spin-up path doubles as crash replacement. The crashed
            // instance leaves the candidate pool until it recovers.
            if (asEnabled && a.life != Life::Off) {
                a.life = Life::Off;
                a.lifeStamp += 1; // orphan a pending SpinUp
                notePower(now, -1);
            }
            break;
          }
          case FaultEventKind::Recover:
            if (!a.crashed)
                return;
            a.crashed = false;
            fstats.recoveries += 1;
            // Autoscaled fleets get the instance back as an Off pool
            // candidate (powering it is the policy's call); static
            // fleets resume dispatching to it immediately.
            break;
          case FaultEventKind::StragglerStart:
            a.slowdown = f.factor;
            fstats.stragglerWindows += 1;
            break;
          case FaultEventKind::StragglerEnd:
            a.slowdown = 1.0;
            break;
        }
    };

    // Price one hold-vs-dispatch decision for a batch led by `head`.
    // The backlog is the committed back-end work (running remainder +
    // staged run-ahead batches) on the least-loaded accepting instance
    // — the one the dispatch would plausibly land on; while that
    // backlog outlasts the head's mapping, holding the front-end
    // forfeits no overlap, so a deeper run-ahead buffer makes holding
    // cheaper exactly when the back-end is the bottleneck.
    const auto dispatchCostOf = [&](const Request &head,
                                    std::uint64_t now) {
        DispatchCost price;
        const ClassPrice cp = priceOf(head);
        price.weightLoadNs = cp.weightLoadNs;
        price.mapNs = cp.mapNs;
        price.arrivalGapNs = gapOf(head.networkId);
        std::uint64_t backlog = kNever;
        for (const auto &acc : accels) {
            if (!acc.canAccept(cfg.occupancy))
                continue;
            std::uint64_t b = 0;
            if (acc.back && acc.back->doneAt > now)
                b = acc.back->doneAt - now;
            for (const auto &s : acc.staged)
                b += s.phases.backendCycles;
            backlog = std::min(backlog, b);
        }
        price.backlogNs = backlog == kNever ? 0 : backlog;
        return price;
    };

    const auto dispatch = [&](std::uint64_t now) {
        // The timer mirrors the *currently outstanding* holds: every
        // dispatch pass re-decides, so first disarm — a hold resolved
        // by new arrivals must not leave a stale event inflating the
        // horizon. (While no stage can accept work, stage-completion
        // events drive re-evaluation instead.)
        timerAt = kNever;
        // Leaders held this pass. A hold freezes only the leader's
        // compatibility group: its members neither lead nor join
        // batches until the group reaches K or the deadline passes,
        // while every other group keeps dispatching around it.
        std::vector<Request> heldLeaders;
        const auto inHeldGroup = [&](const Request &r) {
            for (const auto &h : heldLeaders)
                if (h.id == r.id || batcher.compatible(h, r))
                    return true;
            return false;
        };
        while (!queue.empty()) {
            bool anyAccept = false;
            for (const auto &acc : accels)
                anyAccept = anyAccept || acc.canAccept(cfg.occupancy);
            if (!anyAccept)
                return;

            const Request *head =
                queue.peekEligible(cfg.policy, inHeldGroup);
            if (head == nullptr)
                return; // everything queued belongs to a held group

            // Wait-for-K: hold this group and arm a timer instead of
            // dispatching undersized, unless the deadline passed (or,
            // cost-aware, unless waiting no longer pays). Held-group
            // members are excluded from the K count just as formLedBy
            // excludes them from the batch.
            const BatchHold hold =
                costAwareOn
                    ? batcher.costAwareHold(queue, *head, now,
                                            dispatchCostOf(*head, now),
                                            inHeldGroup)
                    : batcher.holdForHead(queue, *head, now,
                                          inHeldGroup);
            if (hold.hold) {
                if (costAwareOn)
                    report.costHolds += 1;
                if (countedHolds.insert(head->id).second) {
                    report.batchHolds += 1;
                    report.holdTrackingPeak = std::max(
                        report.holdTrackingPeak,
                        static_cast<std::uint64_t>(
                            countedHolds.size()));
                }
                timerAt = std::min(timerAt, hold.until);
                heldLeaders.push_back(*head);
                continue; // other groups may still dispatch
            }

            Batch batch =
                batcher.formLedBy(queue, *head, cfg.policy, inHeldGroup);
            // Hold episodes end at dispatch: dropping the members'
            // ids keeps the dedup set bounded by queue depth however
            // long the trace runs (a re-queued id later starts a
            // fresh, separately counted episode).
            if (!countedHolds.empty())
                for (const auto &r : batch.requests)
                    countedHolds.erase(r.id);
            if (costAwareOn &&
                batch.size() <
                    std::min<std::size_t>(cfg.batcher.targetK,
                                          cfg.batcher.maxBatchSize))
                report.costDispatches += 1;
            // Hedged duplicates leaving admission: leftoverQueued at
            // the end must count only requests of record, so track how
            // many copies are still sitting in the queue. The guard
            // sits inside the loop: one batch can carry several hedge
            // copies, and the counter must saturate per copy, never
            // underflow past the copies actually counted in.
            if (faultsOn)
                for (const auto &r : batch.requests)
                    if (r.hedge && hedgedInQueue > 0)
                        hedgedInQueue -= 1;

            // Classify the batch against the map cache. The batcher's
            // extra rule keeps batches hit-pure or miss-pure; the
            // all-of scan is the honest check of that invariant.
            bool hitBatch = mapCache.enabled();
            if (mapCache.enabled())
                for (const auto &r : batch.requests)
                    hitBatch = hitBatch && mapCache.contains(keyOf(r));
            // Modelled cost of streaming the cached maps back, clamped
            // below into the mapping it replaces (a hit can never be
            // slower than the miss it avoids).
            const std::uint64_t readCost =
                cfg.mapCache.hitReadCycles *
                static_cast<std::uint64_t>(batch.size());

            // Place on the accepting instance that finishes soonest.
            // Batch phases depend only on the accelerator class, so
            // price once per class (precomputed classOf indices — the
            // seed keyed the same memo by config-name strings; a
            // homogeneous fleet pays a single batchPhases pass per
            // dispatch either way). The profiled cycles convert to the
            // ns event axis here, at this class's own clock — the one
            // point where the per-instance cycle domain meets the
            // global wall clock.
            std::vector<std::optional<PhaseProfile>> classPhases(
                fleet.size());
            std::size_t best = accels.size();
            std::uint64_t bestDone = kNever;
            PhaseProfile bestPhases;
            for (std::size_t i = 0; i < accels.size(); ++i) {
                if (!accels[i].canAccept(cfg.occupancy))
                    continue;
                auto &memo = classPhases[classOf[i]];
                if (!memo) {
                    const PhaseProfile full = phasesToNs(
                        model.batchPhases(fleet[i], batch),
                        fleet[i].freqGHz);
                    PhaseProfile ph;
                    if (cfg.occupancy == OccupancyModel::Pipelined) {
                        ph = full;
                        if (hitBatch)
                            ph.mapCycles =
                                std::min(ph.mapCycles, readCost);
                    } else {
                        // Monolithic: one opaque interval — a hit
                        // still shrinks it by the mapping it skips,
                        // net of the clamped read cost.
                        ph.backendCycles = full.total();
                        if (hitBatch)
                            ph.backendCycles -=
                                full.mapCycles -
                                std::min(full.mapCycles, readCost);
                    }
                    memo = ph;
                }
                PhaseProfile ph = *memo;
                // Straggler windows stretch this instance's service
                // time (an effective frequency derate). The exact
                // ==1.0 comparison keeps the fault-free path free of
                // any float round-trip — byte-identity with the
                // reference engine depends on it.
                if (accels[i].slowdown != 1.0) {
                    ph.mapCycles = static_cast<std::uint64_t>(
                        std::llround(static_cast<double>(ph.mapCycles) *
                                     accels[i].slowdown));
                    ph.backendCycles = static_cast<std::uint64_t>(
                        std::llround(
                            static_cast<double>(ph.backendCycles) *
                            accels[i].slowdown));
                }
                const std::uint64_t done =
                    estimateDone(accels[i], ph, now);
                if (done < bestDone) {
                    bestDone = done;
                    best = i;
                    bestPhases = ph;
                }
            }

            AccelState &acc = accels[best];
            InFlight unit;
            unit.phases = bestPhases;
            unit.dispatchedAt = now;
            unit.mapDoneAt = now + bestPhases.mapCycles;
            if (mapCache.enabled()) {
                if (hitBatch) {
                    // Recency/frequency and byte savings book per
                    // member; the cycle savings book once per batch
                    // as exactly what this dispatch skipped — the
                    // batch-level mapping net of the clamped read
                    // cost, priced against the instance the hit
                    // dispatched to (on a heterogeneous fleet the
                    // skipped mapping differs per class), in
                    // event-axis ns.
                    for (const auto &r : batch.requests)
                        mapCache.recordHit(keyOf(r));
                    const std::uint64_t batchMap =
                        phasesToNs(model.batchPhases(fleet[best],
                                                     batch),
                                   fleet[best].freqGHz)
                            .mapCycles;
                    mapCache.creditSavedCycles(
                        batchMap - std::min(batchMap, readCost));
                } else {
                    // Misses publish their maps at mapping completion;
                    // price the entries against the chosen instance.
                    // cloudId 0 means "no content identity" (hand-built
                    // traces): count the miss but never publish a map
                    // — distinct geometries must not alias one entry.
                    for (const auto &r : batch.requests) {
                        mapCache.recordMiss();
                        if (r.cloudId == 0)
                            continue;
                        const auto p = model.profile(
                            fleet[best], r.networkId, r.sizeBucket);
                        unit.inserts.emplace_back(
                            keyOf(r),
                            MapCacheEntry{
                                cyclesToNs(p.phases().mapCycles,
                                           fleet[best].freqGHz),
                                p.mapBytes});
                    }
                }
            }
            acc.usage.mapBusyCycles += bestPhases.mapCycles;
            acc.usage.batches += 1;
            acc.usage.requests += batch.size();
            report.batchSize.record(static_cast<double>(batch.size()));
            for (const auto &r : batch.requests)
                report.queueWaitCycles.record(
                    static_cast<double>(now - r.arrivalCycle));
            // Hedged re-dispatch arms at first dispatch: if the
            // original has not completed after the hedge delay, a
            // duplicate re-enters admission and races it (tail-latency
            // insurance against a crash or straggler eating the
            // original). Copies live in a dedicated id range so the
            // queue's unique-id invariant holds, and each request is
            // hedged at most once.
            if (retry.enabled && retry.hedgeDelayNs > 0) {
                for (const auto &r : batch.requests) {
                    if (r.hedge)
                        continue;
                    ReqFaultState &st = rstate[r.id];
                    if (st.hedged)
                        continue;
                    st.hedged = true;
                    Request copy = r;
                    copy.id |= kHedgeIdBit;
                    copy.hedge = true;
                    hedgeSlots.push_back(copy);
                    pushEv(now + retry.hedgeDelayNs, Event::Kind::Hedge,
                           0, hedgeSlots.size() - 1);
                }
            }
            unit.batch = std::move(batch);
            acc.frontStamp += 1;
            if (unit.mapDoneAt > now)
                pushEv(unit.mapDoneAt, Event::Kind::MapDone,
                       static_cast<std::uint32_t>(best), acc.frontStamp);
            acc.front.emplace(std::move(unit));
            // Zero-length map phases promote straight to the back-end
            // (this is the whole dispatch in the monolithic model).
            service(best, now);
        }
    };

    // Is there anything left to serve or scale for? Gates the
    // recurring autoscaler events so an idle, drained simulation
    // terminates instead of evaluating forever (and so the reported
    // horizon is the work's horizon, not the policy's).
    const auto hasWork = [&]() {
        if (!queue.empty() || source.peek() != nullptr)
            return true;
        if (pendingRetries > 0)
            return true; // a scheduled retry will re-enter admission
        for (const auto &a : accels)
            if (a.front || a.back || !a.staged.empty())
                return true;
        return false;
    };

    // One autoscaler policy evaluation at `now`: read the windowed
    // signals, decide, apply. Scale-up prefers resurrecting a draining
    // instance (still powered, nothing was torn down — instantly
    // Active) over powering a cold one, which pays spinUpCycles before
    // accepting work. Scale-down first cancels a pending spin-up
    // (nothing in flight to drain), else retires the highest-index
    // Active instance gracefully: it stops accepting dispatches but
    // finishes its pipeline (see service()'s drain completion).
    const auto evaluateScaling = [&](std::uint64_t now) {
        std::uint64_t windowP99 = 0;
        if (!windowLat.empty()) {
            const std::size_t idx =
                (windowLat.size() * 99 + 99) / 100 - 1;
            std::nth_element(windowLat.begin(),
                             windowLat.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     std::min(idx,
                                              windowLat.size() - 1)),
                             windowLat.end());
            windowP99 =
                windowLat[std::min(idx, windowLat.size() - 1)];
        }
        windowLat.clear();
        const std::uint64_t depth = queue.size();
        const int action =
            policy.decide(now, depth, windowP99, decisionProvisioned());
        if (action > 0) {
            bool applied = false;
            for (auto &a : accels) {
                if (a.life == Life::Draining) {
                    a.life = Life::Active; // resurrect: no power change
                    applied = true;
                    break;
                }
            }
            if (!applied) {
                for (std::size_t i = 0; i < accels.size(); ++i) {
                    AccelState &a = accels[i];
                    if (a.life != Life::Off)
                        continue;
                    if (a.crashed)
                        continue; // down hardware cannot be powered on
                    notePower(now, +1);
                    if (asCfg.spinUpCycles == 0) {
                        a.life = Life::Active;
                    } else {
                        a.life = Life::SpinningUp;
                        a.lifeStamp += 1;
                        pushEv(now + asCfg.spinUpCycles,
                               Event::Kind::SpinUp,
                               static_cast<std::uint32_t>(i),
                               a.lifeStamp);
                    }
                    applied = true;
                    break;
                }
            }
            if (applied)
                asStats.scaleUps += 1;
        } else if (action < 0) {
            bool applied = false;
            for (std::size_t i = accels.size(); i-- > 0;) {
                AccelState &a = accels[i];
                if (a.life != Life::SpinningUp)
                    continue;
                a.life = Life::Off;
                a.lifeStamp += 1; // orphan the pending SpinUp event
                notePower(now, -1);
                applied = true;
                break;
            }
            if (!applied) {
                for (std::size_t i = accels.size(); i-- > 0;) {
                    AccelState &a = accels[i];
                    if (a.life != Life::Active)
                        continue;
                    if (!a.front && a.staged.empty() && !a.back) {
                        a.life = Life::Off; // idle: off immediately
                        notePower(now, -1);
                    } else {
                        a.life = Life::Draining;
                    }
                    applied = true;
                    break;
                }
            }
            if (applied)
                asStats.scaleDowns += 1;
        }
        const std::uint32_t provisioned = decisionProvisioned();
        asStats.peakProvisioned =
            std::max(asStats.peakProvisioned, provisioned);
        asStats.evals += 1;
        asStats.timeline.samples.push_back(
            ScalingSample{now, depth, windowP99, provisioned,
                          static_cast<std::int64_t>(action)});
        evalGen += 1;
        pushEv(now + asCfg.evalIntervalCycles, Event::Kind::ScaleEval,
               0, evalGen);
    };

    // Stale-entry filter for the lazy-invalidation heap: an event is
    // live only while the slot (or timer generation) it describes
    // still exists unchanged.
    const auto validEv = [&](const Event &e) {
        switch (e.kind) {
          case Event::Kind::MapDone: {
            const AccelState &a = accels[e.accel];
            return a.front.has_value() && a.frontStamp == e.stamp &&
                   !a.front->mapped;
          }
          case Event::Kind::RunDone: {
            const AccelState &a = accels[e.accel];
            return a.back.has_value() && a.backStamp == e.stamp;
          }
          case Event::Kind::Timer:
            return timerAt != kNever && e.stamp == timerGen;
          case Event::Kind::Arrival:
            return true;
          case Event::Kind::ScaleEval:
            // The recurring evaluation dies with the work: a drained,
            // idle simulation must terminate, not tick forever.
            return asEnabled && e.stamp == evalGen && hasWork();
          case Event::Kind::SpinUp: {
            const AccelState &a = accels[e.accel];
            return a.life == Life::SpinningUp &&
                   a.lifeStamp == e.stamp && hasWork();
          }
          case Event::Kind::Fault:
            // A fault program outliving the workload must not extend
            // the horizon: trailing crash/recover events on a drained,
            // idle fleet are dead.
            return hasWork();
          case Event::Kind::Retry:
            // Always live: pendingRetries counts it as work, and the
            // fire handler itself drops retries a hedge already won.
            return true;
          case Event::Kind::Hedge: {
            const auto it =
                rstate.find(hedgeSlots[e.stamp].id & ~kHedgeIdBit);
            return it != rstate.end() && !it->second.done &&
                   !it->second.failed;
          }
        }
        return false;
    };

    // Exactly one Arrival entry is outstanding: the source's next
    // request. Draining admissions up to `clock` re-arms it.
    bool arrivalQueued = false;
    if (source.peek() != nullptr) {
        pushEv(source.peek()->arrivalCycle, Event::Kind::Arrival, 0, 0);
        arrivalQueued = true;
    }
    if (asEnabled) {
        evalGen = 1;
        pushEv(asCfg.evalIntervalCycles, Event::Kind::ScaleEval, 0,
               evalGen);
    }
    // Prime the materialized fault timeline; the stamp indexes back
    // into faultEvents (the vector is immutable once materialized).
    for (std::size_t f = 0; f < faultEvents.size(); ++f)
        pushEv(faultEvents[f].atNs, Event::Kind::Fault,
               faultEvents[f].instance, f);

    std::uint64_t clock = 0;
    std::vector<std::uint32_t> due;
    std::vector<std::uint64_t> faultDue;
    while (!events.empty()) {
        // The next event time is the first live entry's timestamp —
        // the heap's analogue of the seed loop's min() rescan over
        // every instance, the arrival cursor and the timer.
        while (!events.empty() && !validEv(events.top()))
            events.pop();
        if (events.empty())
            break; // pipelines drained, no arrivals, no pending timer
        clock = events.top().at;
        report.loopEvents += 1;

        // Drain every entry due at `clock` (live or stale) so all
        // same-cycle transitions are applied before dispatch decides —
        // the seed serviced every instance per iteration for the same
        // reason.
        due.clear();
        faultDue.clear();
        bool evalDue = false;
        while (!events.empty() && events.top().at <= clock) {
            const Event e = events.top();
            events.pop();
            if (!validEv(e))
                continue;
            switch (e.kind) {
              case Event::Kind::MapDone:
              case Event::Kind::RunDone:
                due.push_back(e.accel);
                break;
              case Event::Kind::Timer:
                // Nothing to apply: the dispatch pass below re-probes
                // every hold against the clock.
                break;
              case Event::Kind::Arrival:
                arrivalQueued = false;
                break;
              case Event::Kind::ScaleEval:
                // Applied after the service sweep so the policy sees
                // this cycle's completions in its window.
                evalDue = true;
                break;
              case Event::Kind::SpinUp:
                // Spin-up finished: the instance starts accepting
                // work this cycle (power was counted at the decision).
                accels[e.accel].life = Life::Active;
                break;
              case Event::Kind::Fault:
                // Deferred past the service sweep: a batch completing
                // at the crash instant completes (deterministic rule).
                faultDue.push_back(e.stamp);
                break;
              case Event::Kind::Retry: {
                pendingRetries -= 1;
                const Request &rr = retrySlots[e.stamp];
                ReqFaultState &st = rstate[rr.id];
                if (st.done)
                    break; // a hedge copy finished it while we waited
                if (!queue.pushUncounted(rr)) {
                    // Re-admission shed on a full queue is a terminal
                    // failure, never a second `dropped` (satellite:
                    // retries must not double-count drop accounting).
                    st.failed = true;
                    report.failed += 1;
                    fstats.retryShed += 1;
                }
                break;
              }
              case Event::Kind::Hedge: {
                const Request &hr = hedgeSlots[e.stamp];
                const ReqFaultState &st =
                    rstate[hr.id & ~kHedgeIdBit];
                if (st.done || st.failed)
                    break; // validEv raced a same-tick completion
                fstats.hedges += 1;
                if (queue.pushUncounted(hr))
                    hedgedInQueue += 1;
                else
                    fstats.hedgesLost += 1; // shed copy, original lives
                break;
              }
            }
        }

        // Stage transitions first, in instance order (the seed's
        // service sweep order — same-cycle completions across
        // instances record in index order): a request arriving at the
        // same cycle can reuse the capacity that just freed up.
        std::sort(due.begin(), due.end());
        due.erase(std::unique(due.begin(), due.end()), due.end());
        for (const std::uint32_t a : due)
            service(a, clock);

        // Faults land after the service sweep (same-tick completions
        // win) and before scaling/dispatch, so the policy sees the
        // capacity loss and no new work is placed on dead hardware.
        for (const std::uint64_t f : faultDue)
            applyFault(faultEvents[f], clock);

        // Scale decisions land before dispatch: a zero-spin-up
        // activation serves this very cycle, and a decommissioned
        // instance stops accepting before new work is placed.
        if (evalDue)
            evaluateScaling(clock);

        // Drain backlog onto freed stages before admitting, so a
        // same-cycle arrival is not dropped against queue space the
        // completion just made available.
        dispatch(clock);
        syncTimer();

        while (source.peek() != nullptr &&
               source.peek()->arrivalCycle <= clock) {
            Request r = source.take();
            report.generated += 1;
            r.estimatedCycles = estimateOf(r);
            // The cadence tracks the offered arrival process (drops
            // included; retries and hedges are re-admissions, not
            // arrivals, and never pass through here).
            if (costAwareOn)
                noteArrival(r);
            queue.push(r); // drop accounting lives in the queue
        }
        if (!arrivalQueued && source.peek() != nullptr) {
            pushEv(source.peek()->arrivalCycle, Event::Kind::Arrival, 0,
                   0);
            arrivalQueued = true;
        }

        dispatch(clock);
        syncTimer();
    }

    report.horizonCycles = clock;
    report.admitted = queue.admitted();
    report.dropped = queue.dropped();
    // Hedged duplicates still in admission are not requests of record:
    // the conservation identity admitted = completed + failed +
    // leftoverQueued counts each request exactly once.
    report.leftoverQueued = queue.size() - hedgedInQueue;
    report.faults = fstats;
    report.mapCache = mapCache.stats();
    for (auto &acc : accels)
        report.accelerators.push_back(acc.usage);
    if (asEnabled) {
        notePower(clock, 0); // close the powered-instance integral
        asStats.enabled = true;
        asStats.minInstances = asCfg.minInstances;
        asStats.maxInstances = asCfg.maxInstances;
        asStats.finalProvisioned = decisionProvisioned();
        asStats.timeline.bucketCycles = asCfg.evalIntervalCycles;
        report.autoscaler = std::move(asStats);
    }
    return report;
}

} // namespace pointacc
