#include "runtime/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "core/logging.hpp"
#include "datasets/synthetic.hpp"
#include "nn/executor.hpp"
#include "sim/accelerator.hpp"

namespace pointacc {

// ---------------------------------------------------------------- //
//                          ServiceModel                             //
// ---------------------------------------------------------------- //

namespace {
constexpr std::uint64_t kNoShared =
    std::numeric_limits<std::uint64_t>::max();
} // namespace

std::uint64_t
ServiceModel::batchServiceCycles(const AcceleratorConfig &cfg,
                                 const Batch &batch) const
{
    simAssert(!batch.empty(), "batch must not be empty");
    std::uint64_t sum = 0;
    std::uint64_t longest = 0;
    std::uint64_t shared = kNoShared;
    for (const auto &r : batch.requests) {
        const auto p = profile(cfg, r.networkId, r.sizeBucket);
        sum += p.totalCycles;
        longest = std::max(longest, p.totalCycles);
        // Same network across the batch => same parameter set. The
        // profiled weight-load time can differ per size bucket (it is
        // capped at that bucket's run length), so credit the smallest
        // member's value: never overcredit, and the price of a batch
        // does not depend on member order.
        shared = std::min(shared, p.weightLoadCycles);
    }
    const std::uint64_t saved =
        shared * static_cast<std::uint64_t>(batch.size() - 1);
    return std::max(longest, sum > saved ? sum - saved : longest);
}

SimServiceModel::SimServiceModel(ServingCatalog catalog)
    : cat(std::move(catalog))
{
    if (cat.networks.empty())
        fatal("serving catalog needs at least one network");
    if (cat.bucketScales.empty())
        fatal("serving catalog needs at least one size bucket");
    for (const double s : cat.bucketScales)
        if (s <= 0.0)
            fatal("size bucket scales must be positive");
}

const PointCloud &
SimServiceModel::cloudFor(std::uint32_t network_id,
                          std::uint32_t bucket) const
{
    const auto key = std::make_pair(network_id, bucket);
    auto it = clouds.find(key);
    if (it == clouds.end()) {
        const auto &net = cat.networks[network_id];
        it = clouds
                 .emplace(key, generate(net.dataset, cat.cloudSeed,
                                        cat.bucketScales[bucket]))
                 .first;
    }
    return it->second;
}

ServiceProfile
SimServiceModel::profile(const AcceleratorConfig &cfg,
                         std::uint32_t network_id,
                         std::uint32_t bucket) const
{
    simAssert(network_id < cat.networks.size(),
              "network id outside the serving catalog");
    simAssert(bucket < cat.bucketScales.size(),
              "size bucket outside the serving catalog");
    const Key key{cfg.name, network_id, bucket};
    const auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    const auto &net = cat.networks[network_id];
    const auto &cloud = cloudFor(network_id, bucket);

    Accelerator accel(cfg);
    const RunResult r = accel.run(net, cloud);

    // Parameter bytes are a property of the network alone; cache the
    // workload summary across accelerator classes.
    const auto wkey = std::make_pair(network_id, bucket);
    auto wit = weightBytes.find(wkey);
    if (wit == weightBytes.end()) {
        const auto summary = summarizeWorkload(net, cloud);
        wit = weightBytes.emplace(wkey, summary.weightBytes).first;
    }

    ServiceProfile p;
    p.totalCycles = std::max<std::uint64_t>(r.totalCycles, 1);
    p.mappingCycles = r.mappingCycles;
    p.computeCycles = r.computeCycles;
    // Weight streaming time at this accelerator's DRAM bandwidth:
    // bytes / (GB/s) = ns, times GHz = cycles. Never credit more than
    // the whole run.
    const double ns = static_cast<double>(wit->second) /
                      std::max(cfg.dram.bandwidthGBps, 1e-9);
    p.weightLoadCycles = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(ns * cfg.freqGHz), p.totalCycles);
    cache.emplace(key, p);
    return p;
}

// ---------------------------------------------------------------- //
//                         FleetScheduler                            //
// ---------------------------------------------------------------- //

FleetScheduler::FleetScheduler(std::vector<AcceleratorConfig> fleet_,
                               const ServiceModel &model_,
                               std::vector<double> bucket_scales,
                               SchedulerConfig config)
    : fleet(std::move(fleet_)), model(model_),
      bucketScales(std::move(bucket_scales)), cfg(config)
{
    if (fleet.empty())
        fatal("fleet needs at least one accelerator");
    for (const auto &acc : fleet) {
        if (acc.freqGHz != fleet.front().freqGHz)
            fatal("mixed-frequency fleets are not supported");
        // Service profiles are memoized per config *name*; two members
        // sharing a name but differing in the fields that drive cost
        // would silently share wrong profiles.
        for (const auto &other : fleet) {
            if (acc.name != other.name)
                continue;
            const bool same =
                acc.mxu.rows == other.mxu.rows &&
                acc.mxu.cols == other.mxu.cols &&
                acc.mpu.mergerWidth == other.mpu.mergerWidth &&
                acc.inputBufferKB == other.inputBufferKB &&
                acc.weightBufferKB == other.weightBufferKB &&
                acc.outputBufferKB == other.outputBufferKB &&
                acc.sorterBufferKB == other.sorterBufferKB &&
                acc.dram.name == other.dram.name &&
                acc.dram.bandwidthGBps == other.dram.bandwidthGBps;
            if (!same)
                fatal("fleet members named '" + acc.name +
                      "' have different configurations; give them "
                      "distinct names");
        }
    }
}

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

struct AccelState
{
    bool busy = false;
    std::uint64_t busyUntil = 0;
    Batch inFlight;
    AcceleratorUsage usage;
};

} // namespace

ServingReport
FleetScheduler::run(std::vector<Request> arrivals) const
{
    std::stable_sort(arrivals.begin(), arrivals.end(), arrivalOrderBefore);

    ServingReport report;
    report.freqGHz = fleet.front().freqGHz;
    report.generated = arrivals.size();

    AdmissionQueue queue(cfg.queueDepth);
    Batcher batcher(cfg.batcher, bucketScales);

    std::vector<AccelState> accels(fleet.size());
    for (std::size_t i = 0; i < fleet.size(); ++i)
        accels[i].usage.name =
            fleet[i].name + "#" + std::to_string(i);

    // SJF/EDF estimates are priced against the lead accelerator; on a
    // heterogeneous fleet relative job ordering is what matters, and
    // network cost ratios are stable across classes.
    const AcceleratorConfig &reference = fleet.front();

    const auto complete = [&](AccelState &acc) {
        for (const auto &r : acc.inFlight.requests) {
            const std::uint64_t latency = acc.busyUntil - r.arrivalCycle;
            report.latencyCycles.record(static_cast<double>(latency));
            if (r.deadlineCycle > 0 && acc.busyUntil > r.deadlineCycle)
                report.deadlineMisses += 1;
            report.completed += 1;
        }
        acc.inFlight.requests.clear();
        acc.busy = false;
    };

    const auto dispatch = [&](std::uint64_t now) {
        while (!queue.empty()) {
            // Any idle accelerator?
            bool anyIdle = false;
            for (const auto &acc : accels)
                anyIdle = anyIdle || !acc.busy;
            if (!anyIdle)
                return;

            Batch batch = batcher.form(queue, cfg.policy);

            // Place on the idle instance that finishes soonest.
            std::size_t best = accels.size();
            std::uint64_t bestCycles = kNever;
            for (std::size_t i = 0; i < accels.size(); ++i) {
                if (accels[i].busy)
                    continue;
                const std::uint64_t c =
                    model.batchServiceCycles(fleet[i], batch);
                if (c < bestCycles) {
                    bestCycles = c;
                    best = i;
                }
            }
            AccelState &acc = accels[best];
            acc.busy = true;
            acc.busyUntil = now + bestCycles;
            acc.usage.busyCycles += bestCycles;
            acc.usage.batches += 1;
            acc.usage.requests += batch.size();
            report.batchSize.record(static_cast<double>(batch.size()));
            for (const auto &r : batch.requests)
                report.queueWaitCycles.record(
                    static_cast<double>(now - r.arrivalCycle));
            acc.inFlight = std::move(batch);
        }
    };

    std::size_t next = 0;
    std::uint64_t clock = 0;
    while (true) {
        const std::uint64_t tArrival =
            next < arrivals.size() ? arrivals[next].arrivalCycle : kNever;
        std::uint64_t tFree = kNever;
        for (const auto &acc : accels)
            if (acc.busy)
                tFree = std::min(tFree, acc.busyUntil);
        if (tArrival == kNever && tFree == kNever)
            break; // no arrivals left, fleet idle, queue drained

        clock = std::min(tArrival, tFree);

        // Completions first: a request arriving at the same cycle can
        // reuse the accelerator that just freed up.
        for (auto &acc : accels)
            if (acc.busy && acc.busyUntil <= clock)
                complete(acc);

        // Drain backlog onto freed accelerators before admitting, so
        // a same-cycle arrival is not dropped against queue space the
        // completion just made available.
        dispatch(clock);

        while (next < arrivals.size() &&
               arrivals[next].arrivalCycle <= clock) {
            Request r = arrivals[next++];
            r.estimatedCycles =
                model.profile(reference, r.networkId, r.sizeBucket)
                    .totalCycles;
            queue.push(r); // drop accounting lives in the queue
        }

        dispatch(clock);
    }

    report.horizonCycles = clock;
    report.admitted = queue.admitted();
    report.dropped = queue.dropped();
    report.leftoverQueued = queue.size();
    for (auto &acc : accels)
        report.accelerators.push_back(acc.usage);
    return report;
}

} // namespace pointacc
