/**
 * @file
 * Open-loop inference request generation for the serving runtime.
 *
 * The serving simulator studies PointAcc fleets under load, so the
 * traffic source is *open loop*: arrivals are generated independently
 * of how fast the fleet drains them (closed-loop generators hide
 * queueing collapse). Two arrival processes are provided:
 *
 *  - Poisson: memoryless arrivals at a fixed mean rate, the baseline
 *    of every queueing analysis;
 *  - Bursty: a compound-Poisson process — burst *events* arrive
 *    Poisson, each carrying several back-to-back requests of the same
 *    class (a LiDAR rig uploading a sweep burst, a batch of AR clients
 *    joining at once). Same mean rate as Poisson, much heavier tails.
 *
 * Requests draw their class (network, cloud-size bucket, deadline)
 * from a weighted mix, so one run can blend e.g. ModelNet40 object
 * classification with full-scene MinkowskiUNet segmentation the way a
 * shared fleet would see them. Everything is seeded through the
 * repository's portable Rng: equal seeds give byte-identical traces.
 *
 * Stream semantics: every request carries a cloudId — the content
 * address of its point cloud. Classes may name a streamId and a
 * mapReuseProb; with probability mapReuseProb a generated request
 * *repeats* its stream's previous frame (same cloudId => identical
 * geometry => identical kernel maps), the way consecutive sweeps of
 * one LiDAR rig repeat. Repeated frames are what the runtime's
 * kernel-map cache (runtime/map_cache) can serve without re-mapping.
 *
 * Streaming: the generator is *lazy*. stream() yields arrivals one at
 * a time in global arrival order while holding only O(in-flight burst
 * members + stream classes) state — a million-request trace costs the
 * same resident memory as a thousand-request one. Draw-for-draw the
 * stream performs the exact RNG sequence the seed's materializing
 * generate() performed (gap, burst size, class pick, per-member reuse,
 * in that order per event), so traces are byte-identical; generate()
 * is now a convenience wrapper that drains the stream into a vector.
 * Only burst members that straddle a later event's arrival are ever
 * buffered (a bounded min-heap), which is what the seed's trailing
 * stable_sort existed to fix up.
 *
 * Invariants (fuzzed by test_runtime_properties): generate() returns
 * arrivals sorted by (arrivalCycle, id) with ids dense from 0, every
 * arrival inside the horizon (bursty members may trail by the burst
 * length), byte-identical across equal-seed runs, and cloudIds that
 * are unique per fresh frame (repeats only ever point at an earlier
 * frame of the same stream). The stream emits the identical sequence
 * (asserted against a preserved reference generator) with
 * peakBuffered() independent of trace length.
 */

#ifndef POINTACC_RUNTIME_WORKLOAD_HPP
#define POINTACC_RUNTIME_WORKLOAD_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "core/rng.hpp"

namespace pointacc {

/** One entry of the traffic mix. */
struct RequestClass
{
    std::uint32_t networkId = 0;  ///< index into the serving catalog
    std::uint32_t sizeBucket = 0; ///< index into the catalog's buckets
    double weight = 1.0;          ///< relative share of traffic
    /** Relative deadline in cycles; 0 = best-effort (no deadline). */
    std::uint64_t deadlineCycles = 0;
    /** Stream this class's clouds belong to (classes sharing a
     *  streamId share one frame sequence — e.g. one LiDAR rig feeding
     *  both a detector and a segmenter). */
    std::uint32_t streamId = 0;
    /** Probability in [0, 1] that a request repeats the stream's
     *  previous frame (same cloudId) instead of producing a fresh
     *  one. 0 = every frame unique (no kernel-map reuse possible). */
    double mapReuseProb = 0.0;
};

/** Arrival process shapes. */
enum class ArrivalProcess
{
    Poisson, ///< memoryless, one request per arrival event
    Bursty,  ///< compound Poisson: clumped same-class request groups
};

std::string toString(ArrivalProcess process);

/** Full specification of one offered-load scenario. */
struct WorkloadSpec
{
    std::uint64_t seed = 1;
    /** Mean offered load in requests per million cycles (at 1 GHz this
     *  is requests per millisecond). */
    double requestsPerMCycle = 1.0;
    /** Arrival-generation window in cycles. */
    std::uint64_t horizonCycles = 0;
    ArrivalProcess arrivals = ArrivalProcess::Poisson;
    /** Mean burst size for ArrivalProcess::Bursty (>= 1). Burst sizes
     *  are uniform on [1, 2*meanBurstSize - 1], preserving the mean. */
    std::uint32_t meanBurstSize = 4;
    std::vector<RequestClass> mix;
};

/** One inference request flowing through the serving runtime. */
struct Request
{
    std::uint64_t id = 0;
    std::uint32_t networkId = 0;
    std::uint32_t sizeBucket = 0;
    /** Content address of the request's point cloud: equal cloudIds
     *  carry identical geometry (a repeated stream frame) and hence
     *  identical kernel maps. Together with networkId and the
     *  network's layer-config hash this forms the kernel-map cache
     *  key (see runtime/map_cache). */
    std::uint64_t cloudId = 0;
    std::uint64_t arrivalCycle = 0;
    /** Absolute completion deadline; 0 = best-effort. */
    std::uint64_t deadlineCycle = 0;
    /** Service-time estimate, filled at admission by the scheduler
     *  (drives shortest-job-first ordering; 0 until admitted). */
    std::uint64_t estimatedCycles = 0;
    /** Crash-retry attempt number (0 = first dispatch). Bumped when a
     *  crash victim re-enters admission under a RetryPolicy
     *  (runtime/faults); the frozen reference engine ignores it. */
    std::uint32_t attempt = 0;
    /** True on a hedged duplicate (runtime/faults): an uncounted
     *  re-admission of an outstanding request, carrying a dedicated
     *  id range so queue ids stay unique; the first copy to complete
     *  wins. Never set on generator-produced traffic. */
    bool hedge = false;
};

/**
 * Validate a WorkloadSpec, throwing std::invalid_argument with a
 * descriptive message on the first violation: empty mix, non-positive
 * or non-finite offered load, bursty arrivals with meanBurstSize < 1,
 * negative or non-finite class weights, mapReuseProb outside [0, 1],
 * or a mix whose weights sum to zero. Both WorkloadGenerator and
 * WorkloadStream call this on construction, so a bad spec can never
 * silently generate a nonsense trace (the seed accepted e.g. negative
 * rates and mapReuseProb > 1 without complaint).
 */
void validateWorkloadSpec(const WorkloadSpec &spec);

namespace detail {

/** Exponential variate with the given mean — the seed generator's
 *  exact inverse-CDF expression, shared so every arrival process
 *  (stationary or piecewise-rate, see runtime/traffic) performs
 *  byte-identical draws. */
double exponentialDraw(Rng &rng, double mean);

/** Weighted class pick over `mix` (the seed's linear scan). */
std::size_t pickWeightedClass(Rng &rng,
                              const std::vector<RequestClass> &mix,
                              double total_weight);

} // namespace detail

/** Global arrival order: arrival cycle, ties broken by id. Both the
 *  generator and the scheduler sort by this, so they can never drift. */
inline bool
arrivalOrderBefore(const Request &a, const Request &b)
{
    return a.arrivalCycle != b.arrivalCycle ? a.arrivalCycle < b.arrivalCycle
                                            : a.id < b.id;
}

/**
 * Pull interface for arrival traces: requests delivered one at a time
 * in global arrival order ((arrivalCycle, id) nondecreasing). The
 * scheduler consumes one of these, so a streamed million-request trace
 * never has to exist in memory at once.
 */
class RequestSource
{
  public:
    virtual ~RequestSource() = default;

    /** Next request without consuming it; nullptr when exhausted. The
     *  pointer is valid until the next take(). */
    virtual const Request *peek() = 0;

    /** Consume and return the next request (peek() must be non-null). */
    virtual Request take() = 0;
};

/** RequestSource over an already-materialized trace sorted by
 *  arrivalOrderBefore (the scheduler's vector entry point). */
class VectorRequestSource : public RequestSource
{
  public:
    explicit VectorRequestSource(std::vector<Request> trace)
        : items(std::move(trace))
    {
    }

    const Request *
    peek() override
    {
        return next < items.size() ? &items[next] : nullptr;
    }

    Request
    take() override
    {
        return items[next++];
    }

  private:
    std::vector<Request> items;
    std::size_t next = 0;
};

/**
 * Lazy arrival stream (see the file header): the seed generator's
 * exact RNG draw sequence, emitted in sorted order through a bounded
 * reorder heap instead of a materialize-then-sort pass.
 */
class WorkloadStream : public RequestSource
{
  public:
    explicit WorkloadStream(const WorkloadSpec &spec);

    const Request *peek() override;
    Request take() override;

    /** High-water mark of buffered requests (reorder heap plus the
     *  peek slot): the stream's whole per-trace memory footprint, and
     *  what the scale tests assert stays O(in-flight), independent of
     *  how many requests the stream emits. */
    std::size_t peakBuffered() const { return peak; }

    /** Requests emitted so far. */
    std::uint64_t emitted() const { return numEmitted; }

  private:
    struct LaterArrival
    {
        bool
        operator()(const Request &a, const Request &b) const
        {
            return arrivalOrderBefore(b, a);
        }
    };

    /** Materialize events until the reorder heap's top is safe to
     *  release (no future event can rank before it) or the horizon is
     *  reached. */
    void refill();

    std::optional<Request> nextInternal();

    WorkloadSpec wspec;
    Rng rng;
    double totalWeight = 0.0;
    double meanGap = 1.0;        ///< mean inter-event gap in cycles
    double clock = 0.0;          ///< continuous arrival-process time
    std::uint64_t nextEventCycle = 0; ///< next unmaterialized event
    bool exhausted = false;      ///< horizon reached; drain the heap
    std::uint64_t nextId = 0;
    std::uint64_t nextCloudId = 1;
    /** Per-stream last frame (O(classes), the only per-class state). */
    std::map<std::uint32_t, std::uint64_t> lastFrame;
    std::priority_queue<Request, std::vector<Request>, LaterArrival>
        pending;
    std::optional<Request> lookahead;
    std::size_t peak = 0;
    std::uint64_t numEmitted = 0;
};

/**
 * Deterministic open-loop request generator.
 *
 * stream() yields the trace lazily in arrival order; generate()
 * materializes the same trace (sorted by arrival cycle, ids dense
 * from 0) for callers that want a vector.
 */
class WorkloadGenerator
{
  public:
    explicit WorkloadGenerator(WorkloadSpec spec);

    const WorkloadSpec &spec() const { return wspec; }

    /** Lazy stream over the spec's trace: O(in-flight + classes)
     *  memory however long the horizon. */
    WorkloadStream stream() const { return WorkloadStream(wspec); }

    std::vector<Request> generate() const;

  private:
    WorkloadSpec wspec;
};

} // namespace pointacc

#endif // POINTACC_RUNTIME_WORKLOAD_HPP
