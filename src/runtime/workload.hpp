/**
 * @file
 * Open-loop inference request generation for the serving runtime.
 *
 * The serving simulator studies PointAcc fleets under load, so the
 * traffic source is *open loop*: arrivals are generated independently
 * of how fast the fleet drains them (closed-loop generators hide
 * queueing collapse). Two arrival processes are provided:
 *
 *  - Poisson: memoryless arrivals at a fixed mean rate, the baseline
 *    of every queueing analysis;
 *  - Bursty: a compound-Poisson process — burst *events* arrive
 *    Poisson, each carrying several back-to-back requests of the same
 *    class (a LiDAR rig uploading a sweep burst, a batch of AR clients
 *    joining at once). Same mean rate as Poisson, much heavier tails.
 *
 * Requests draw their class (network, cloud-size bucket, deadline)
 * from a weighted mix, so one run can blend e.g. ModelNet40 object
 * classification with full-scene MinkowskiUNet segmentation the way a
 * shared fleet would see them. Everything is seeded through the
 * repository's portable Rng: equal seeds give byte-identical traces.
 *
 * Stream semantics: every request carries a cloudId — the content
 * address of its point cloud. Classes may name a streamId and a
 * mapReuseProb; with probability mapReuseProb a generated request
 * *repeats* its stream's previous frame (same cloudId => identical
 * geometry => identical kernel maps), the way consecutive sweeps of
 * one LiDAR rig repeat. Repeated frames are what the runtime's
 * kernel-map cache (runtime/map_cache) can serve without re-mapping.
 *
 * Invariants (fuzzed by test_runtime_properties): generate() returns
 * arrivals sorted by (arrivalCycle, id) with ids dense from 0, every
 * arrival inside the horizon (bursty members may trail by the burst
 * length), byte-identical across equal-seed runs, and cloudIds that
 * are unique per fresh frame (repeats only ever point at an earlier
 * frame of the same stream).
 */

#ifndef POINTACC_RUNTIME_WORKLOAD_HPP
#define POINTACC_RUNTIME_WORKLOAD_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace pointacc {

/** One entry of the traffic mix. */
struct RequestClass
{
    std::uint32_t networkId = 0;  ///< index into the serving catalog
    std::uint32_t sizeBucket = 0; ///< index into the catalog's buckets
    double weight = 1.0;          ///< relative share of traffic
    /** Relative deadline in cycles; 0 = best-effort (no deadline). */
    std::uint64_t deadlineCycles = 0;
    /** Stream this class's clouds belong to (classes sharing a
     *  streamId share one frame sequence — e.g. one LiDAR rig feeding
     *  both a detector and a segmenter). */
    std::uint32_t streamId = 0;
    /** Probability in [0, 1] that a request repeats the stream's
     *  previous frame (same cloudId) instead of producing a fresh
     *  one. 0 = every frame unique (no kernel-map reuse possible). */
    double mapReuseProb = 0.0;
};

/** Arrival process shapes. */
enum class ArrivalProcess
{
    Poisson, ///< memoryless, one request per arrival event
    Bursty,  ///< compound Poisson: clumped same-class request groups
};

std::string toString(ArrivalProcess process);

/** Full specification of one offered-load scenario. */
struct WorkloadSpec
{
    std::uint64_t seed = 1;
    /** Mean offered load in requests per million cycles (at 1 GHz this
     *  is requests per millisecond). */
    double requestsPerMCycle = 1.0;
    /** Arrival-generation window in cycles. */
    std::uint64_t horizonCycles = 0;
    ArrivalProcess arrivals = ArrivalProcess::Poisson;
    /** Mean burst size for ArrivalProcess::Bursty (>= 1). Burst sizes
     *  are uniform on [1, 2*meanBurstSize - 1], preserving the mean. */
    std::uint32_t meanBurstSize = 4;
    std::vector<RequestClass> mix;
};

/** One inference request flowing through the serving runtime. */
struct Request
{
    std::uint64_t id = 0;
    std::uint32_t networkId = 0;
    std::uint32_t sizeBucket = 0;
    /** Content address of the request's point cloud: equal cloudIds
     *  carry identical geometry (a repeated stream frame) and hence
     *  identical kernel maps. Together with networkId and the
     *  network's layer-config hash this forms the kernel-map cache
     *  key (see runtime/map_cache). */
    std::uint64_t cloudId = 0;
    std::uint64_t arrivalCycle = 0;
    /** Absolute completion deadline; 0 = best-effort. */
    std::uint64_t deadlineCycle = 0;
    /** Service-time estimate, filled at admission by the scheduler
     *  (drives shortest-job-first ordering; 0 until admitted). */
    std::uint64_t estimatedCycles = 0;
};

/** Global arrival order: arrival cycle, ties broken by id. Both the
 *  generator and the scheduler sort by this, so they can never drift. */
inline bool
arrivalOrderBefore(const Request &a, const Request &b)
{
    return a.arrivalCycle != b.arrivalCycle ? a.arrivalCycle < b.arrivalCycle
                                            : a.id < b.id;
}

/**
 * Deterministic open-loop request generator.
 *
 * generate() returns the full arrival trace for the spec's horizon,
 * sorted by arrival cycle, ids dense from 0.
 */
class WorkloadGenerator
{
  public:
    explicit WorkloadGenerator(WorkloadSpec spec);

    const WorkloadSpec &spec() const { return wspec; }

    std::vector<Request> generate() const;

  private:
    WorkloadSpec wspec;
};

} // namespace pointacc

#endif // POINTACC_RUNTIME_WORKLOAD_HPP
