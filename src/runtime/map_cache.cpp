#include "runtime/map_cache.hpp"

#include <iterator>

#include "core/logging.hpp"

namespace pointacc {

std::string
toString(MapCacheEviction policy)
{
    switch (policy) {
      case MapCacheEviction::Lru: return "lru";
      case MapCacheEviction::Lfu: return "lfu";
    }
    return "?";
}

MapCache::MapCache(MapCacheConfig config) : cfg(config)
{
    if (cfg.enabled && cfg.capacityEntries < 1)
        fatal("map cache capacity must be >= 1 when enabled");
}

bool
MapCache::contains(const MapCacheKey &key) const
{
    return entries.find(key) != entries.end();
}

void
MapCache::recordHit(const MapCacheKey &key)
{
    const auto it = entries.find(key);
    simAssert(it != entries.end(), "recordHit on a non-resident key");
    it->second.lastUse = ++tick;
    it->second.uses += 1;
    counters.hits += 1;
    counters.bytesSaved += it->second.entry.mapBytes;
}

void
MapCache::creditSavedCycles(std::uint64_t saved)
{
    counters.cyclesSaved += saved;
}

void
MapCache::recordMiss()
{
    counters.misses += 1;
}

void
MapCache::insert(const MapCacheKey &key, const MapCacheEntry &entry)
{
    const auto it = entries.find(key);
    if (it != entries.end()) {
        // Refresh, don't re-insert: two in-flight misses of one key
        // (e.g. the same frame dispatched to two instances before
        // either mapping finished) land here once each.
        it->second.entry = entry;
        it->second.lastUse = ++tick;
        return;
    }
    if (entries.size() >= cfg.capacityEntries)
        evictOne();
    Node node;
    node.entry = entry;
    node.lastUse = node.insertedAt = ++tick;
    entries.emplace(key, node);
    counters.insertions += 1;
}

void
MapCache::evictOne()
{
    simAssert(!entries.empty(), "evicting from an empty map cache");
    auto victim = entries.begin();
    for (auto it = std::next(entries.begin()); it != entries.end(); ++it) {
        const Node &a = it->second;
        const Node &b = victim->second;
        bool worse = false;
        switch (cfg.eviction) {
          case MapCacheEviction::Lru:
            worse = a.lastUse < b.lastUse;
            break;
          case MapCacheEviction::Lfu:
            // Least frequently used; ties fall back to recency, then
            // insertion order, keeping the victim deterministic.
            worse = a.uses != b.uses ? a.uses < b.uses
                    : a.lastUse != b.lastUse
                        ? a.lastUse < b.lastUse
                        : a.insertedAt < b.insertedAt;
            break;
        }
        if (worse)
            victim = it;
    }
    entries.erase(victim);
    counters.evictions += 1;
}

} // namespace pointacc
