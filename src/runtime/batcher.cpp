#include "runtime/batcher.hpp"

#include <algorithm>
#include <limits>

#include "core/logging.hpp"

namespace pointacc {

Batcher::Batcher(const BatcherConfig &config, std::vector<double> bucket_scales)
    : cfg(config), bucketScales(std::move(bucket_scales))
{
    if (cfg.maxBatchSize < 1)
        fatal("batcher maxBatchSize must be >= 1");
    if (cfg.maxPointsRatio < 1.0)
        fatal("batcher maxPointsRatio must be >= 1");
    if (cfg.targetK < 1)
        fatal("batcher targetK must be >= 1");
    if (bucketScales.empty())
        fatal("batcher needs at least one size bucket");
}

bool
Batcher::compatible(const Request &a, const Request &b) const
{
    if (a.networkId != b.networkId)
        return false;
    simAssert(a.sizeBucket < bucketScales.size() &&
                  b.sizeBucket < bucketScales.size(),
              "request size bucket out of catalog range");
    const double sa = bucketScales[a.sizeBucket];
    const double sb = bucketScales[b.sizeBucket];
    const double ratio = sa > sb ? sa / sb : sb / sa;
    if (ratio > cfg.maxPointsRatio)
        return false;
    return !extraRule || extraRule(a, b);
}

std::vector<std::uint32_t>
Batcher::allowedBuckets(const Request &head) const
{
    simAssert(head.sizeBucket < bucketScales.size(),
              "request size bucket out of catalog range");
    std::vector<std::uint32_t> out;
    const double sh = bucketScales[head.sizeBucket];
    for (std::uint32_t b = 0;
         b < static_cast<std::uint32_t>(bucketScales.size()); ++b) {
        const double sb = bucketScales[b];
        const double ratio = sh > sb ? sh / sb : sb / sh;
        // Same comparison compatible() applies, so the class walk and
        // the pairwise rule can never disagree on a bucket.
        if (!(ratio > cfg.maxPointsRatio))
            out.push_back(b);
    }
    return out;
}

Batcher::GroupProbe
Batcher::probeGroup(
    const AdmissionQueue &queue, const Request &head, std::size_t want,
    const std::function<bool(const Request &)> &excluded) const
{
    // Count queued requests that would actually join a batch led by
    // the head (the head itself included; excluded requests — members
    // of other held groups — would not, so they must not count), and
    // find the group's oldest arrival: the wait bound anchors there,
    // not at the current leader — under SJF/EDF the leader can change
    // as newer requests outrank it, and a sliding anchor would let an
    // old member wait far past the hold bound.
    //
    // Only the head's network's size-compatible class sub-queues can
    // contain group members, so the probe visits those instead of
    // scanning the whole queue; the probe's outcome (count reaching K,
    // or the group-wide oldest arrival) is visit-order independent.
    GroupProbe probe;
    probe.oldest = head.arrivalCycle;
    for (const std::uint32_t b : allowedBuckets(head)) {
        queue.visitClass(head.networkId, b, [&](const Request &r) {
            if (r.id == head.id ||
                (compatible(head, r) &&
                 !(excluded && excluded(r)))) {
                probe.have += 1;
                probe.oldest = std::min(probe.oldest, r.arrivalCycle);
                if (probe.have >= want) {
                    probe.reached = true;
                    return false;
                }
            }
            return true;
        });
        if (probe.reached)
            break;
    }
    return probe;
}

BatchHold
Batcher::holdForHead(
    const AdmissionQueue &queue, const Request &head, std::uint64_t now,
    const std::function<bool(const Request &)> &excluded) const
{
    BatchHold decision;
    if (!cfg.enabled || cfg.targetK <= 1 || cfg.maxWaitCycles == 0)
        return decision;

    const std::size_t want =
        std::min<std::size_t>(cfg.targetK, cfg.maxBatchSize);
    const GroupProbe probe = probeGroup(queue, head, want, excluded);
    if (probe.reached)
        return decision; // K reached: dispatch now

    const std::uint64_t deadline = probe.oldest + cfg.maxWaitCycles;
    if (now >= deadline)
        return decision; // waited long enough: dispatch undersized

    decision.hold = true;
    decision.until = deadline;
    return decision;
}

BatchHold
Batcher::costAwareHold(
    const AdmissionQueue &queue, const Request &head, std::uint64_t now,
    const DispatchCost &price,
    const std::function<bool(const Request &)> &excluded) const
{
    BatchHold decision;
    if (!cfg.enabled || cfg.targetK <= 1)
        return decision;
    // No observed arrival cadence means no basis to price waiting:
    // dispatch eagerly rather than hold on a guess.
    if (price.arrivalGapNs == 0)
        return decision;

    const std::size_t want =
        std::min<std::size_t>(cfg.targetK, cfg.maxBatchSize);
    const GroupProbe probe = probeGroup(queue, head, want, excluded);
    if (probe.reached)
        return decision; // K reached: dispatch now

    // Optional hard cap: with maxWaitCycles configured, the priced
    // hold still honors the operator's absolute latency bound.
    const std::uint64_t hardCap =
        cfg.maxWaitCycles > 0 ? probe.oldest + cfg.maxWaitCycles
                              : std::numeric_limits<std::uint64_t>::max();
    if (now >= hardCap)
        return decision;

    // The trade, priced in event-axis ns. Each member still missing
    // from K amortizes away one weight reload (the cost model credits
    // min-weight-load per extra member — see batchServiceCycles):
    const std::uint64_t missing =
        static_cast<std::uint64_t>(want - probe.have);
    const std::uint64_t gain = missing * price.weightLoadNs;
    // Waiting forfeits front/back overlap only once the back-end's
    // committed backlog (running remainder + staged run-ahead batches)
    // is thinner than the mapping a dispatch would overlap with it:
    const std::uint64_t slack =
        price.backlogNs > price.mapNs ? price.backlogNs - price.mapNs
                                      : 0;
    // Expected cost of reaching K: the group has already waited since
    // its oldest arrival, and filling the gap takes an expected
    // missing * gap more — minus the slack that was forfeited anyway.
    const std::uint64_t spent =
        (now - probe.oldest) + missing * price.arrivalGapNs;
    const std::uint64_t cost = spent > slack ? spent - slack : 0;
    if (gain <= cost)
        return decision; // amortization no longer pays: dispatch

    // Re-evaluate at the earliest decision-changing moment: the
    // expected next arrival (fresh K count), the break-even time at
    // which the growing cost catches the gain, or the hard cap.
    // gain > cost implies breakEven > now, so every candidate is
    // strictly in the future and the hold can never arm a stale timer.
    const std::uint64_t breakEven =
        probe.oldest + slack + gain - missing * price.arrivalGapNs;
    decision.hold = true;
    decision.until = std::min({now + price.arrivalGapNs, breakEven,
                               hardCap});
    return decision;
}

BatchHold
Batcher::holdFor(const AdmissionQueue &queue, QueuePolicy policy,
                 std::uint64_t now) const
{
    simAssert(!queue.empty(), "holdFor needs a non-empty queue");
    return holdForHead(queue, queue.peek(policy), now);
}

Batch
Batcher::form(AdmissionQueue &queue, QueuePolicy policy) const
{
    simAssert(!queue.empty(), "cannot form a batch from an empty queue");
    return formLedBy(queue, queue.peek(policy), policy, nullptr);
}

Batch
Batcher::formLedBy(
    AdmissionQueue &queue, const Request &head, QueuePolicy policy,
    const std::function<bool(const Request &)> &excluded) const
{
    Batch batch;
    const std::size_t limit =
        !cfg.enabled ? 1 : cfg.maxBatchSize;
    // Followers can only come from the head's network's
    // size-compatible class sub-queues; the extra rule (hit/miss
    // purity) is the one per-item predicate left to evaluate there.
    batch.requests = queue.popLedByBuckets(
        head, policy, allowedBuckets(head), extraRule, limit, excluded);
    return batch;
}

} // namespace pointacc
