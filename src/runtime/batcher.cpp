#include "runtime/batcher.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace pointacc {

Batcher::Batcher(const BatcherConfig &config, std::vector<double> bucket_scales)
    : cfg(config), bucketScales(std::move(bucket_scales))
{
    if (cfg.maxBatchSize < 1)
        fatal("batcher maxBatchSize must be >= 1");
    if (cfg.maxPointsRatio < 1.0)
        fatal("batcher maxPointsRatio must be >= 1");
    if (cfg.targetK < 1)
        fatal("batcher targetK must be >= 1");
    if (bucketScales.empty())
        fatal("batcher needs at least one size bucket");
}

bool
Batcher::compatible(const Request &a, const Request &b) const
{
    if (a.networkId != b.networkId)
        return false;
    simAssert(a.sizeBucket < bucketScales.size() &&
                  b.sizeBucket < bucketScales.size(),
              "request size bucket out of catalog range");
    const double sa = bucketScales[a.sizeBucket];
    const double sb = bucketScales[b.sizeBucket];
    const double ratio = sa > sb ? sa / sb : sb / sa;
    if (ratio > cfg.maxPointsRatio)
        return false;
    return !extraRule || extraRule(a, b);
}

std::vector<std::uint32_t>
Batcher::allowedBuckets(const Request &head) const
{
    simAssert(head.sizeBucket < bucketScales.size(),
              "request size bucket out of catalog range");
    std::vector<std::uint32_t> out;
    const double sh = bucketScales[head.sizeBucket];
    for (std::uint32_t b = 0;
         b < static_cast<std::uint32_t>(bucketScales.size()); ++b) {
        const double sb = bucketScales[b];
        const double ratio = sh > sb ? sh / sb : sb / sh;
        // Same comparison compatible() applies, so the class walk and
        // the pairwise rule can never disagree on a bucket.
        if (!(ratio > cfg.maxPointsRatio))
            out.push_back(b);
    }
    return out;
}

BatchHold
Batcher::holdForHead(
    const AdmissionQueue &queue, const Request &head, std::uint64_t now,
    const std::function<bool(const Request &)> &excluded) const
{
    BatchHold decision;
    if (!cfg.enabled || cfg.targetK <= 1 || cfg.maxWaitCycles == 0)
        return decision;

    // Count queued requests that would actually join a batch led by
    // the head (the head itself included; excluded requests — members
    // of other held groups — would not, so they must not count), and
    // find the group's oldest arrival: the wait bound anchors there,
    // not at the current leader — under SJF/EDF the leader can change
    // as newer requests outrank it, and a sliding anchor would let an
    // old member wait far past maxWaitCycles.
    //
    // Only the head's network's size-compatible class sub-queues can
    // contain group members, so the probe visits those instead of
    // scanning the whole queue; the probe's outcome (count reaching K,
    // or the group-wide oldest arrival) is visit-order independent.
    const std::size_t want =
        std::min<std::size_t>(cfg.targetK, cfg.maxBatchSize);
    std::size_t have = 0;
    std::uint64_t oldest = head.arrivalCycle;
    bool reached = false;
    for (const std::uint32_t b : allowedBuckets(head)) {
        queue.visitClass(head.networkId, b, [&](const Request &r) {
            if (r.id == head.id ||
                (compatible(head, r) &&
                 !(excluded && excluded(r)))) {
                have += 1;
                oldest = std::min(oldest, r.arrivalCycle);
                if (have >= want) {
                    reached = true;
                    return false;
                }
            }
            return true;
        });
        if (reached)
            return decision; // K reached: dispatch now
    }

    const std::uint64_t deadline = oldest + cfg.maxWaitCycles;
    if (now >= deadline)
        return decision; // waited long enough: dispatch undersized

    decision.hold = true;
    decision.until = deadline;
    return decision;
}

BatchHold
Batcher::holdFor(const AdmissionQueue &queue, QueuePolicy policy,
                 std::uint64_t now) const
{
    simAssert(!queue.empty(), "holdFor needs a non-empty queue");
    return holdForHead(queue, queue.peek(policy), now);
}

Batch
Batcher::form(AdmissionQueue &queue, QueuePolicy policy) const
{
    simAssert(!queue.empty(), "cannot form a batch from an empty queue");
    return formLedBy(queue, queue.peek(policy), policy, nullptr);
}

Batch
Batcher::formLedBy(
    AdmissionQueue &queue, const Request &head, QueuePolicy policy,
    const std::function<bool(const Request &)> &excluded) const
{
    Batch batch;
    const std::size_t limit =
        !cfg.enabled ? 1 : cfg.maxBatchSize;
    // Followers can only come from the head's network's
    // size-compatible class sub-queues; the extra rule (hit/miss
    // purity) is the one per-item predicate left to evaluate there.
    batch.requests = queue.popLedByBuckets(
        head, policy, allowedBuckets(head), extraRule, limit, excluded);
    return batch;
}

} // namespace pointacc
