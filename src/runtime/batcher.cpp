#include "runtime/batcher.hpp"

#include "core/logging.hpp"

namespace pointacc {

Batcher::Batcher(const BatcherConfig &config, std::vector<double> bucket_scales)
    : cfg(config), bucketScales(std::move(bucket_scales))
{
    if (cfg.maxBatchSize < 1)
        fatal("batcher maxBatchSize must be >= 1");
    if (cfg.maxPointsRatio < 1.0)
        fatal("batcher maxPointsRatio must be >= 1");
    if (bucketScales.empty())
        fatal("batcher needs at least one size bucket");
}

bool
Batcher::compatible(const Request &a, const Request &b) const
{
    if (a.networkId != b.networkId)
        return false;
    simAssert(a.sizeBucket < bucketScales.size() &&
                  b.sizeBucket < bucketScales.size(),
              "request size bucket out of catalog range");
    const double sa = bucketScales[a.sizeBucket];
    const double sb = bucketScales[b.sizeBucket];
    const double ratio = sa > sb ? sa / sb : sb / sa;
    return ratio <= cfg.maxPointsRatio;
}

Batch
Batcher::form(AdmissionQueue &queue, QueuePolicy policy) const
{
    simAssert(!queue.empty(), "cannot form a batch from an empty queue");
    Batch batch;
    if (!cfg.enabled || cfg.maxBatchSize == 1) {
        batch.requests.push_back(queue.pop(policy));
        return batch;
    }
    batch.requests = queue.popCompatible(
        policy,
        [this](const Request &a, const Request &b) {
            return compatible(a, b);
        },
        cfg.maxBatchSize);
    return batch;
}

} // namespace pointacc
