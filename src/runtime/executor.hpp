/**
 * @file
 * Work-stealing probe executor: the parallel engine behind planner
 * probes, bench sweep matrices and the sharded property suites.
 *
 * Every planner probe, bench matrix row and property-suite seed is an
 * independent deterministic simulation, so the repo's sweeps are
 * embarrassingly parallel — what they need is a pool that (a) keeps
 * every core busy under unbalanced task costs (a fleet-10 probe can
 * cost 10x a fleet-1 probe) and (b) never lets parallelism leak into
 * results. ProbeExecutor provides both:
 *
 *  - submission is deterministic: tasks get monotonically increasing
 *    ids in submission order and are dealt round-robin to per-worker
 *    deques; map() returns results in submission order, whatever
 *    order the workers finished in (the deterministic-merge step
 *    every consumer relies on for byte-identical output);
 *  - workers pop their own deque front; an idle worker steals from
 *    the back of a victim's deque, so a worker stuck behind one
 *    expensive probe sheds its backlog to the others (the
 *    executor-manager discipline of keeping every lane fed);
 *  - a thread blocked in Future::get() helps: it executes pending
 *    tasks (its own wait target included) instead of sleeping, so
 *    nested waits make progress even on a single-worker pool;
 *  - exceptions propagate: a throwing task stores its exception and
 *    Future::get() rethrows it on the consumer thread;
 *  - threadCount() == 0 is inline mode: submit() runs the task on
 *    the calling thread immediately — the serial baseline the
 *    differential gates compare parallel runs against, with zero
 *    threads created.
 *
 * Determinism contract: the executor schedules *when* tasks run,
 * never *what they compute* — tasks must not share mutable state
 * (SimServiceModel's memo is internally synchronized for exactly this
 * reason), and consumers must merge by task id, not completion order.
 * Under that contract a parallel sweep is byte-identical to the
 * serial one, which bench_serving, bench_simperf and the property
 * suite all enforce with differential gates.
 */

#ifndef POINTACC_RUNTIME_EXECUTOR_HPP
#define POINTACC_RUNTIME_EXECUTOR_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

namespace pointacc {

class ProbeExecutor
{
  public:
    /**
     * @param thread_count  worker threads to spawn; 0 = inline mode
     *                      (no threads, submit() executes on the
     *                      caller — the serial baseline)
     */
    explicit ProbeExecutor(std::size_t thread_count);

    /** Drains every submitted task, then joins the workers. */
    ~ProbeExecutor();

    ProbeExecutor(const ProbeExecutor &) = delete;
    ProbeExecutor &operator=(const ProbeExecutor &) = delete;

    /** Worker threads to use when the caller asks for "auto":
     *  hardware_concurrency, floored at 1. */
    static std::size_t defaultThreads();

    /** Resolve a --threads style knob: 0 = auto (defaultThreads()),
     *  1 = serial inline mode, N = N workers. */
    static std::size_t resolveThreads(std::size_t requested);

    std::size_t threadCount() const { return workers.size(); }

    /** Tasks executed so far (all modes). */
    std::uint64_t executed() const { return numExecuted.load(); }

    /** Tasks executed by a thread other than their home worker —
     *  worker steals and helper runs alike. The unit suite asserts
     *  this is non-zero in schedules that can only terminate through
     *  a steal. */
    std::uint64_t stolen() const { return numStolen.load(); }

    template <class T> class Future;

    /** Submit a callable; returns a typed future with a deterministic
     *  task id. In inline mode the task runs before submit returns. */
    template <class F, class T = std::invoke_result_t<F>>
    Future<T>
    submit(F fn)
    {
        static_assert(!std::is_reference_v<T>,
                      "tasks must return by value");
        Future<T> fut;
        fut.owner = this;
        fut.state = std::make_shared<typename Future<T>::State>();
        auto state = fut.state;
        fut.task = enqueue([state, fn = std::move(fn)]() mutable {
            try {
                if constexpr (std::is_void_v<T>) {
                    fn();
                    state->value.emplace();
                } else {
                    state->value.emplace(fn());
                }
            } catch (...) {
                state->error = std::current_exception();
            }
        });
        return fut;
    }

    /**
     * Run every task and return the results in submission order —
     * the deterministic-merge primitive: result[i] is task[i]'s value
     * however the workers interleaved. Rethrows the first (by task
     * order) failed task's exception after all tasks finished.
     */
    template <class T>
    std::vector<T>
    map(std::vector<std::function<T()>> tasks)
    {
        std::vector<Future<T>> futures;
        futures.reserve(tasks.size());
        for (auto &task : tasks)
            futures.push_back(submit(std::move(task)));
        std::vector<T> results;
        results.reserve(futures.size());
        for (auto &f : futures)
            results.push_back(f.get());
        return results;
    }

  private:
    /** One queued task: the erased work plus its completion latch. */
    struct Task
    {
        std::uint64_t id = 0;
        std::size_t home = 0;
        std::function<void()> run;
        std::mutex doneMutex;
        std::condition_variable doneCv;
        bool done = false;
    };

    struct Worker
    {
        std::mutex mutex;
        std::deque<std::shared_ptr<Task>> deque;
    };

    std::shared_ptr<Task> enqueue(std::function<void()> run);
    void runTask(Task &task, std::size_t runner);
    /** Pop own deque front, else steal a victim's back; true if a
     *  task was run. `self` is the runner's home index (workers.size()
     *  for helper threads, which always "steal"). */
    bool tryRunOne(std::size_t self);
    void workerLoop(std::size_t index);
    void waitFor(Task &task);

    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<std::thread> threads;
    std::mutex sleepMutex;
    std::condition_variable sleepCv;
    bool stopping = false;
    std::uint64_t nextId = 0;
    std::atomic<std::uint64_t> numExecuted{0};
    std::atomic<std::uint64_t> numStolen{0};

  public:
    /** Handle to a submitted task's result. get() blocks — helping
     *  execute pending tasks, not sleeping — then returns the value
     *  or rethrows the task's exception. */
    template <class T> class Future
    {
      public:
        Future() = default;

        bool valid() const { return state != nullptr; }

        /** Task id in submission order (the deterministic merge key). */
        std::uint64_t id() const { return task->id; }

        T
        get()
        {
            owner->waitFor(*task);
            if (state->error)
                std::rethrow_exception(state->error);
            if constexpr (!std::is_void_v<T>)
                return std::move(*state->value);
        }

      private:
        friend class ProbeExecutor;
        /** void tasks store a monostate so State stays one shape. */
        using Stored =
            std::conditional_t<std::is_void_v<T>, std::monostate, T>;
        struct State
        {
            std::optional<Stored> value;
            std::exception_ptr error;
        };
        std::shared_ptr<State> state;
        std::shared_ptr<Task> task;
        ProbeExecutor *owner = nullptr;
    };
};

} // namespace pointacc

#endif // POINTACC_RUNTIME_EXECUTOR_HPP
