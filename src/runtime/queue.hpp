/**
 * @file
 * Bounded admission queue with pluggable dequeue policies, indexed for
 * O(log depth) operation.
 *
 * Requests that arrive while every accelerator is busy wait here. The
 * queue is bounded: a fleet under sustained overload must shed load
 * somewhere, and an explicit drop counter at admission is the honest
 * place (unbounded queues make every overloaded experiment look fine
 * until the latency numbers are read). Three dequeue policies:
 *
 *  - FIFO: arrival order, the fairness baseline;
 *  - SJF: shortest estimated service first, the throughput/mean-latency
 *    optimizer (estimates come from the scheduler's profiled cost
 *    model at admission);
 *  - EDF: earliest absolute deadline first; best-effort requests (no
 *    deadline) rank behind all deadlined ones.
 *
 * The seed implementation scanned a flat vector per selection —
 * O(depth) per pop with O(depth) mid-vector erases, which dominated
 * million-request simulations. Selection now runs over policy-ranked
 * indexes (see queue.cpp):
 *
 *  - a FIFO ring buffer (rank-ordered deque with lazy tombstones —
 *    pushes arrive in rank order on the scheduler's path, so admission
 *    is an O(1) append and pop is an O(1) front read);
 *  - SJF/EDF ordered indexes keyed (policy key, arrival, id) with
 *    O(log depth) insert/erase;
 *  - per-(networkId, sizeBucket) class sub-queues in the same rank
 *    order, so batch formation (popLedBy via Batcher) and wait-for-K
 *    group counting visit only candidate classes instead of scanning
 *    the whole queue.
 *
 * Every ranking is the total order (policy key, arrival cycle, id) the
 * seed used, so pop order — including every tie-break — is unchanged;
 * tests/test_runtime_properties.cpp fuzzes pop-for-pop equivalence
 * against the preserved seed queue (runtime/reference.hpp).
 *
 * Contract and invariants (fuzzed by test_runtime_properties via the
 * scheduler): size() never exceeds the depth limit; admitted() +
 * dropped() counts every push exactly once, so the serving report's
 * conservation identity (generated = admitted + dropped) holds; every
 * policy's ranking is total and deterministic (ties always break on
 * arrival cycle, then id), so equal seeds replay byte-identically;
 * peek/pop/peekEligible agree on the same single ranking. Request ids
 * must be unique among queued items (the workload generator's ids are;
 * enqueuing a duplicate id asserts).
 */

#ifndef POINTACC_RUNTIME_QUEUE_HPP
#define POINTACC_RUNTIME_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/workload.hpp"

namespace pointacc {

/** Dequeue orderings. */
enum class QueuePolicy
{
    Fifo, ///< first come, first served
    Sjf,  ///< shortest (estimated) job first
    Edf,  ///< earliest deadline first; best-effort last
};

std::string toString(QueuePolicy policy);

/** Bounded admission queue with drop accounting. */
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(std::size_t max_depth);
    ~AdmissionQueue();

    AdmissionQueue(AdmissionQueue &&) noexcept;
    AdmissionQueue &operator=(AdmissionQueue &&) noexcept;

    /** Admit or drop (queue full). Returns true when admitted. */
    bool push(const Request &r);

    /**
     * Admit without touching the admitted/dropped counters, or return
     * false (again uncounted) when the queue is full. This is the
     * re-admission path for crash retries and hedged duplicates
     * (runtime/faults): each offered request is counted exactly once
     * at its first push, so the conservation identity generated =
     * admitted + dropped keeps holding however many times a request
     * re-enters — a shed retry is the scheduler's `failed` terminal
     * state, never a second `dropped`.
     */
    bool pushUncounted(const Request &r);

    bool empty() const { return size() == 0; }
    std::size_t size() const;
    std::size_t depthLimit() const { return maxDepth; }

    /** Next request under `policy` (queue must be non-empty). */
    const Request &peek(QueuePolicy policy) const;

    /**
     * Best-ranked request under `policy` that `excluded` does not
     * reject, or nullptr when every queued request is excluded. The
     * scheduler uses this to skip over wait-for-K held groups so a
     * held head never blocks dispatchable traffic behind it.
     */
    const Request *
    peekEligible(QueuePolicy policy,
                 const std::function<bool(const Request &)> &excluded)
        const;

    /** Remove and return the next request under `policy`. */
    Request pop(QueuePolicy policy);

    /**
     * Pop the request with `head`'s id plus up to `max_count - 1`
     * further requests satisfying `compatible(head, other)` and not
     * rejected by `excluded` (empty = no filter), in policy order.
     * `head` must be queued. This is popCompatible anchored at an
     * explicit leader instead of the policy head. The predicate is
     * arbitrary, so selection traverses the global rank order; the
     * batcher's structured path (popLedByBuckets) narrows the
     * traversal to candidate classes instead.
     */
    std::vector<Request>
    popLedBy(const Request &head, QueuePolicy policy,
             const std::function<bool(const Request &, const Request &)>
                 &compatible,
             std::size_t max_count,
             const std::function<bool(const Request &)> &excluded);

    /**
     * Batch formation over class sub-queues: pop `head` plus up to
     * `max_count - 1` followers drawn only from the (head.networkId,
     * bucket) sub-queues for the listed `buckets`, in policy order
     * across those classes, accepting a follower r only when
     * `extra(head, r)` (empty = always) holds and `excluded(r)` (empty
     * = never) does not. With `buckets` = every bucket whose size
     * ratio the batcher allows, this selects exactly the requests the
     * generic popLedBy would — without visiting other networks'
     * entries.
     */
    std::vector<Request>
    popLedByBuckets(const Request &head, QueuePolicy policy,
                    const std::vector<std::uint32_t> &buckets,
                    const std::function<bool(const Request &,
                                             const Request &)> &extra,
                    std::size_t max_count,
                    const std::function<bool(const Request &)> &excluded);

    /**
     * Pop the policy's head request plus up to `max_count - 1` further
     * requests satisfying `compatible(head, other)`, in policy order.
     * This is the batcher's access path: the head anchors the batch so
     * policy ordering decides *which* batch forms, and compatibility
     * decides who may join it.
     */
    std::vector<Request>
    popCompatible(QueuePolicy policy,
                  const std::function<bool(const Request &, const Request &)>
                      &compatible,
                  std::size_t max_count);

    /**
     * Visit every queued request of class (networkId, sizeBucket) in
     * the rank order of the most recently used policy; `fn` returns
     * false to stop early. The batcher's wait-for-K probe counts group
     * members this way — the probe's outcome is order-independent, so
     * any visit order matches the seed's full-queue scan.
     */
    void visitClass(std::uint32_t network_id, std::uint32_t bucket,
                    const std::function<bool(const Request &)> &fn) const;

    std::uint64_t admitted() const { return numAdmitted; }
    std::uint64_t dropped() const { return numDropped; }

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
    std::size_t maxDepth;
    std::uint64_t numAdmitted = 0;
    std::uint64_t numDropped = 0;
};

} // namespace pointacc

#endif // POINTACC_RUNTIME_QUEUE_HPP
