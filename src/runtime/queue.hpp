/**
 * @file
 * Bounded admission queue with pluggable dequeue policies.
 *
 * Requests that arrive while every accelerator is busy wait here. The
 * queue is bounded: a fleet under sustained overload must shed load
 * somewhere, and an explicit drop counter at admission is the honest
 * place (unbounded queues make every overloaded experiment look fine
 * until the latency numbers are read). Three dequeue policies:
 *
 *  - FIFO: arrival order, the fairness baseline;
 *  - SJF: shortest estimated service first, the throughput/mean-latency
 *    optimizer (estimates come from the scheduler's profiled cost
 *    model at admission);
 *  - EDF: earliest absolute deadline first; best-effort requests (no
 *    deadline) rank behind all deadlined ones.
 *
 * Selection scans the backing vector; queue depths in every experiment
 * are at most a few thousand, so O(depth) per pop is irrelevant next
 * to the millions of simulated cycles between pops.
 *
 * Contract and invariants (fuzzed by test_runtime_properties via the
 * scheduler): size() never exceeds the depth limit; admitted() +
 * dropped() counts every push exactly once, so the serving report's
 * conservation identity (generated = admitted + dropped) holds; every
 * policy's ranking is total and deterministic (ties always break on
 * arrival cycle, then id), so equal seeds replay byte-identically;
 * peek/pop/peekEligible agree on the same single ranking scan.
 */

#ifndef POINTACC_RUNTIME_QUEUE_HPP
#define POINTACC_RUNTIME_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/workload.hpp"

namespace pointacc {

/** Dequeue orderings. */
enum class QueuePolicy
{
    Fifo, ///< first come, first served
    Sjf,  ///< shortest (estimated) job first
    Edf,  ///< earliest deadline first; best-effort last
};

std::string toString(QueuePolicy policy);

/** Bounded admission queue with drop accounting. */
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(std::size_t max_depth) : maxDepth(max_depth) {}

    /** Admit or drop (queue full). Returns true when admitted. */
    bool
    push(const Request &r)
    {
        if (items.size() >= maxDepth) {
            numDropped += 1;
            return false;
        }
        items.push_back(r);
        numAdmitted += 1;
        return true;
    }

    bool empty() const { return items.empty(); }
    std::size_t size() const { return items.size(); }
    std::size_t depthLimit() const { return maxDepth; }

    /** Next request under `policy` (queue must be non-empty). */
    const Request &peek(QueuePolicy policy) const;

    /**
     * Best-ranked request under `policy` that `excluded` does not
     * reject, or nullptr when every queued request is excluded. The
     * scheduler uses this to skip over wait-for-K held groups so a
     * held head never blocks dispatchable traffic behind it.
     */
    const Request *
    peekEligible(QueuePolicy policy,
                 const std::function<bool(const Request &)> &excluded)
        const;

    /** Remove and return the next request under `policy`. */
    Request pop(QueuePolicy policy);

    /**
     * Pop the request with `head`'s id plus up to `max_count - 1`
     * further requests satisfying `compatible(head, other)` and not
     * rejected by `excluded` (empty = no filter), in policy order.
     * `head` must be queued. This is popCompatible anchored at an
     * explicit leader instead of the policy head.
     */
    std::vector<Request>
    popLedBy(const Request &head, QueuePolicy policy,
             const std::function<bool(const Request &, const Request &)>
                 &compatible,
             std::size_t max_count,
             const std::function<bool(const Request &)> &excluded);

    /**
     * Pop the policy's head request plus up to `max_count - 1` further
     * requests satisfying `compatible(head, other)`, in policy order.
     * This is the batcher's access path: the head anchors the batch so
     * policy ordering decides *which* batch forms, and compatibility
     * decides who may join it.
     */
    std::vector<Request>
    popCompatible(QueuePolicy policy,
                  const std::function<bool(const Request &, const Request &)>
                      &compatible,
                  std::size_t max_count);

    std::uint64_t admitted() const { return numAdmitted; }
    std::uint64_t dropped() const { return numDropped; }

    const std::vector<Request> &pending() const { return items; }

  private:
    /** Index of the best-ranked request under `policy` that
     *  `excluded` (empty = none) does not reject; items.size() when
     *  nothing is eligible. The single ranking scan behind peek, pop
     *  and peekEligible. */
    std::size_t
    selectIndex(QueuePolicy policy,
                const std::function<bool(const Request &)> &excluded =
                    nullptr) const;

    /** True when a ranks strictly ahead of b under `policy`. */
    static bool ranksBefore(QueuePolicy policy, const Request &a,
                            const Request &b);

    std::vector<Request> items;
    std::size_t maxDepth;
    std::uint64_t numAdmitted = 0;
    std::uint64_t numDropped = 0;
};

} // namespace pointacc

#endif // POINTACC_RUNTIME_QUEUE_HPP
