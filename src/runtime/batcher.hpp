/**
 * @file
 * Request batcher: groups compatible queued requests into one dispatch.
 *
 * PointAcc's temporal fusion amortizes DRAM traffic across the layers
 * of one inference; batching applies the same idea *across requests*.
 * Requests running the same network share weights, so a batch streams
 * the parameter set from DRAM once instead of once per request — the
 * scheduler's cost model credits exactly that weight-reload time back
 * (see ServiceModel::batchServiceCycles).
 *
 * Compatibility is deliberately narrow:
 *  - same network (different networks share nothing), and
 *  - comparable cloud size (bucket scale ratio bounded), so one giant
 *    scene cannot hide behind a batch of small objects and wreck the
 *    small requests' latency, and
 *  - whatever extra rule the scheduler installs (setExtraCompatibility):
 *    with the kernel-map cache enabled, a cache-hit request must not
 *    merge with a cache-miss request — the hit's collapsed map phase
 *    and the miss's full mapping cannot share one dispatch price, so
 *    batches are kept hit-pure or miss-pure.
 *
 * The batch leader is chosen by the queue policy; followers are the
 * best-ranked compatible requests. Two dispatch disciplines:
 *
 *  - immediate (targetK == 1): pure dispatch-time coalescing, zero
 *    added idle time — a batch takes whatever compatible requests
 *    happen to be queued;
 *  - wait-for-K (targetK > 1): when fewer than targetK compatible
 *    requests are queued, the batcher asks the scheduler to hold the
 *    head for up to maxWaitCycles past its arrival, hoping more
 *    same-network requests show up. The hold is a timer event in the
 *    scheduler's event loop, so a lull never deadlocks: when the
 *    deadline passes, whatever is queued dispatches. Classic
 *    latency-for-throughput trade. A hold is scoped to the head's
 *    compatibility group — requests of other networks keep
 *    dispatching around a held group, they are never frozen behind
 *    it.
 *
 * On top of wait-for-K, the opt-in cost-aware mode (costAware) prices
 * the hold decision instead of timing it: hold exactly while the
 * weight-reload amortization still expected from filling the batch to
 * K exceeds the pipeline-overlap time the wait forfeits, with the
 * back-end's committed backlog counted as free slack (holding the
 * front-end costs nothing while the back-end could not have started
 * the work anyway — the run-ahead buffer deepens that slack). See
 * costAwareHold.
 *
 * Invariants (fuzzed by test_runtime_properties): every batch formLedBy
 * returns is non-empty, within maxBatchSize, led by the given head, and
 * pairwise compatible with it; holdForHead never holds past the group's
 * oldest member's arrival + maxWaitCycles, so held work always
 * dispatches eventually.
 */

#ifndef POINTACC_RUNTIME_BATCHER_HPP
#define POINTACC_RUNTIME_BATCHER_HPP

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/queue.hpp"
#include "runtime/workload.hpp"

namespace pointacc {

/** Batch formation knobs. */
struct BatcherConfig
{
    bool enabled = true;
    /** Upper bound on requests per dispatch. */
    std::uint32_t maxBatchSize = 8;
    /** Largest allowed cloud-size ratio (bucket scales) inside a batch. */
    double maxPointsRatio = 4.0;
    /** Wait-for-K: hold the queue head until this many compatible
     *  requests are queued (capped at maxBatchSize). 1 = dispatch
     *  immediately, never idle. */
    std::uint32_t targetK = 1;
    /** Longest a wait-for-K hold may keep a batch past the *oldest*
     *  queued member's arrival (leader changes under SJF/EDF never
     *  extend the wait); when the deadline passes the batch
     *  dispatches undersized. */
    std::uint64_t maxWaitCycles = 0;
    /** Cost-aware dispatch: replace the blind maxWaitCycles timer with
     *  a priced hold-vs-dispatch decision (costAwareHold) — hold only
     *  while the weight-reload amortization still expected from
     *  reaching K exceeds the pipeline-overlap time forfeited by
     *  waiting. maxWaitCycles then acts only as an optional hard cap
     *  (0 = uncapped); targetK > 1 is still required for any hold. */
    bool costAware = false;
};

/** One dispatch unit: >= 1 compatible requests for a single network. */
struct Batch
{
    std::vector<Request> requests;

    std::size_t size() const { return requests.size(); }
    bool empty() const { return requests.empty(); }

    /** Network shared by every member (leader's network). */
    std::uint32_t
    networkId() const
    {
        return requests.empty() ? 0 : requests.front().networkId;
    }
};

/** Outcome of a wait-for-K probe: hold the head, or dispatch now. */
struct BatchHold
{
    bool hold = false;
    /** Absolute cycle at which the hold expires (valid when hold). */
    std::uint64_t until = 0;
};

/**
 * Dispatch-time inputs to the cost-aware hold decision, priced by the
 * scheduler on the event axis (ns) for the head's (network, bucket)
 * class. The batcher owns the decision rule; the scheduler owns the
 * simulator state the rule prices against.
 */
struct DispatchCost
{
    /** One weight-reload interval for the head's class: what each
     *  additional batch member amortizes away. */
    std::uint64_t weightLoadNs = 0;
    /** The head's full mapping phase: the front-end time a dispatch
     *  issued right now would overlap with the back-end backlog. */
    std::uint64_t mapNs = 0;
    /** Back-end work already committed on the least-loaded accepting
     *  instance (running remainder plus staged run-ahead batches):
     *  while the back-end is this busy, holding the front-end is
     *  free — the overlap is forfeited anyway. */
    std::uint64_t backlogNs = 0;
    /** Mean inter-arrival gap of the head's network (0 = unknown:
     *  fewer than two arrivals seen, no basis to price waiting). */
    std::uint64_t arrivalGapNs = 0;
};

/** Groups queue heads into batches under a compatibility rule. */
class Batcher
{
  public:
    /** `bucket_scales`: the serving catalog's cloud-size buckets, used
     *  to evaluate the size-ratio rule. */
    Batcher(const BatcherConfig &config, std::vector<double> bucket_scales);

    const BatcherConfig &config() const { return cfg; }

    /**
     * Install an additional pairwise rule ANDed with the built-in
     * compatibility (same network, bounded size ratio). The scheduler
     * uses this to keep kernel-map cache hits and misses in separate
     * dispatches; the rule may read mutable external state (the cache)
     * — it is re-evaluated at every formation/hold decision.
     */
    void
    setExtraCompatibility(
        std::function<bool(const Request &, const Request &)> rule)
    {
        extraRule = std::move(rule);
    }

    /** May `b` join a batch led by `a`? */
    bool compatible(const Request &a, const Request &b) const;

    /**
     * Wait-for-K probe: should the scheduler hold a batch led by
     * `head` at time `now` instead of dispatching it? Holds only
     * while fewer than min(targetK, maxBatchSize) compatible requests
     * are queued AND the group's oldest member arrived less than
     * maxWaitCycles ago;
     * the returned deadline is a timer the event loop must honor so
     * held work always dispatches eventually. A hold applies to the
     * head's compatibility group only — the scheduler keeps
     * dispatching other groups around it. `excluded` (empty = none)
     * marks requests that would not actually join a batch led by
     * `head` (members of other held groups): they must not count
     * toward K, or the probe would green-light a dispatch that
     * formLedBy then forms undersized.
     */
    BatchHold holdForHead(const AdmissionQueue &queue,
                          const Request &head, std::uint64_t now,
                          const std::function<bool(const Request &)>
                              &excluded = nullptr) const;

    /**
     * Cost-aware hold-vs-dispatch probe (BatcherConfig::costAware):
     * instead of holding blindly until maxWaitCycles, price the trade
     * directly in event-axis ns —
     *
     *   gain = (K - have) * weightLoadNs      amortization still to win
     *   slack = max(0, backlogNs - mapNs)     overlap forfeited anyway
     *   cost = max(0, waited + (K - have) * gapNs - slack)
     *
     * and hold only while gain > cost and the arrival gap is known
     * (two arrivals seen). The returned deadline is the earliest of
     * the expected next arrival (re-evaluate with fresh facts), the
     * break-even time at which cost catches gain, and the optional
     * maxWaitCycles hard cap — each strictly in the future, and cost
     * grows with the clock while gain cannot grow without new
     * arrivals, so every held group still dispatches eventually.
     */
    BatchHold costAwareHold(const AdmissionQueue &queue,
                            const Request &head, std::uint64_t now,
                            const DispatchCost &price,
                            const std::function<bool(const Request &)>
                                &excluded = nullptr) const;

    /** holdForHead anchored at the queue's policy head (non-empty). */
    BatchHold holdFor(const AdmissionQueue &queue, QueuePolicy policy,
                      std::uint64_t now) const;

    /**
     * Form the next batch from `queue` under `policy`. The queue must
     * be non-empty. With batching disabled, returns a singleton batch.
     */
    Batch form(AdmissionQueue &queue, QueuePolicy policy) const;

    /**
     * Form a batch led by `head` (which must be queued): the head
     * plus the best-ranked compatible followers not rejected by
     * `excluded` — the scheduler excludes members of held groups so
     * an eager batch cannot strip a held group below its target K.
     * With batching disabled, returns just the head.
     */
    Batch formLedBy(AdmissionQueue &queue, const Request &head,
                    QueuePolicy policy,
                    const std::function<bool(const Request &)> &excluded)
        const;

  private:
    /** Size buckets whose scale ratio against `head`'s bucket passes
     *  the maxPointsRatio rule — together with the head's network id,
     *  the exact set of class sub-queues a batch led by `head` can
     *  draw from. */
    std::vector<std::uint32_t> allowedBuckets(const Request &head) const;

    /** What a hold probe needs to know about the head's group: how
     *  many queued requests would join a batch led by `head` (capped
     *  at `want` — `reached` short-circuits the walk there) and the
     *  group-wide oldest arrival. */
    struct GroupProbe
    {
        std::size_t have = 0;
        std::uint64_t oldest = 0;
        bool reached = false;
    };
    GroupProbe probeGroup(const AdmissionQueue &queue,
                          const Request &head, std::size_t want,
                          const std::function<bool(const Request &)>
                              &excluded) const;

    BatcherConfig cfg;
    std::vector<double> bucketScales;
    std::function<bool(const Request &, const Request &)> extraRule;
};

} // namespace pointacc

#endif // POINTACC_RUNTIME_BATCHER_HPP
