/**
 * @file
 * Request batcher: groups compatible queued requests into one dispatch.
 *
 * PointAcc's temporal fusion amortizes DRAM traffic across the layers
 * of one inference; batching applies the same idea *across requests*.
 * Requests running the same network share weights, so a batch streams
 * the parameter set from DRAM once instead of once per request — the
 * scheduler's cost model credits exactly that weight-reload time back
 * (see ServiceModel::batchServiceCycles).
 *
 * Compatibility is deliberately narrow:
 *  - same network (different networks share nothing), and
 *  - comparable cloud size (bucket scale ratio bounded), so one giant
 *    scene cannot hide behind a batch of small objects and wreck the
 *    small requests' latency.
 *
 * The batch leader is chosen by the queue policy; followers are the
 * best-ranked compatible requests. A batch never waits for stragglers:
 * this is a pull batcher (dispatch-time coalescing), which adds zero
 * idle time — the classic wait-for-K batcher trades latency for
 * throughput and belongs to a later PR.
 */

#ifndef POINTACC_RUNTIME_BATCHER_HPP
#define POINTACC_RUNTIME_BATCHER_HPP

#include <cstdint>
#include <vector>

#include "runtime/queue.hpp"
#include "runtime/workload.hpp"

namespace pointacc {

/** Batch formation knobs. */
struct BatcherConfig
{
    bool enabled = true;
    /** Upper bound on requests per dispatch. */
    std::uint32_t maxBatchSize = 8;
    /** Largest allowed cloud-size ratio (bucket scales) inside a batch. */
    double maxPointsRatio = 4.0;
};

/** One dispatch unit: >= 1 compatible requests for a single network. */
struct Batch
{
    std::vector<Request> requests;

    std::size_t size() const { return requests.size(); }
    bool empty() const { return requests.empty(); }

    /** Network shared by every member (leader's network). */
    std::uint32_t
    networkId() const
    {
        return requests.empty() ? 0 : requests.front().networkId;
    }
};

/** Groups queue heads into batches under a compatibility rule. */
class Batcher
{
  public:
    /** `bucket_scales`: the serving catalog's cloud-size buckets, used
     *  to evaluate the size-ratio rule. */
    Batcher(const BatcherConfig &config, std::vector<double> bucket_scales);

    const BatcherConfig &config() const { return cfg; }

    /** May `b` join a batch led by `a`? */
    bool compatible(const Request &a, const Request &b) const;

    /**
     * Form the next batch from `queue` under `policy`. The queue must
     * be non-empty. With batching disabled, returns a singleton batch.
     */
    Batch form(AdmissionQueue &queue, QueuePolicy policy) const;

  private:
    BatcherConfig cfg;
    std::vector<double> bucketScales;
};

} // namespace pointacc

#endif // POINTACC_RUNTIME_BATCHER_HPP
