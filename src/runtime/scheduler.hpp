/**
 * @file
 * Fleet scheduler: a discrete-event serving simulator over N PointAcc
 * instances.
 *
 * The per-inference simulator (sim/accelerator) prices one run of one
 * network; this layer composes those prices into a serving system. A
 * global wall-clock axis in nanoseconds (uint64_t ticks) advances
 * through a single binary-heap event queue — request arrivals (pulled
 * lazily from a RequestSource), mapping-phase completions, back-end
 * completions, batcher timers (wait-for-K holds), autoscaler policy
 * evaluations and instance spin-ups, and — when a fault program is
 * configured — instance crashes/recoveries, straggler windows, retry
 * re-admissions and hedge re-dispatches (runtime/faults); entries are
 * sequence-numbered and lazily invalidated by slot/timer generation
 * stamps, so the loop is O(log events) per step instead of the seed's
 * per-iteration rescan of every instance (the seed loop survives
 * verbatim in runtime/reference for differential testing, and
 * docs/PERFORMANCE.md carries the complexity budget). Whenever an
 * accelerator can accept work and the admission queue is non-empty,
 * the batcher forms a dispatch and the scheduler places it on the
 * accelerator that would finish it soonest (greedy, which on a
 * heterogeneous fleet naturally prefers the server-class instance and
 * spills to edge-class ones under load).
 *
 * Each instance is modeled as the two decoupled resources PointAcc
 * actually has (Section 5 of the paper): a Mapping Unit front-end and
 * a Matrix Unit + memory back-end. A batch first occupies the front
 * end for its mapping phase, then hands its mapped output to the
 * back-end for compute + exposed DRAM. The handoff buffer is bounded
 * by SchedulerConfig::runAheadDepth: at the default depth 1 there is
 * no buffer beyond the front-end itself, the handoff blocks, and at
 * most two batches are in flight per instance — one mapping, one
 * executing (the frozen reference engine's behavior, byte-identical).
 * At depth k the front-end runs up to k batches ahead: mapped-but-
 * not-executed batches queue in a k-1 deep staging FIFO (the
 * buffer-sizing question PointAcc answers in hardware, exposed as a
 * knob), so a long back-end run no longer stalls the Mapping Unit.
 * That overlap is exactly the paper's decoupled orchestration lifted
 * across requests: the mapping of request i+1 hides behind the
 * back-end of request i. OccupancyModel::Monolithic disables the
 * overlap (whole-run busy interval, the pre-pipelining behavior) for
 * apples-to-apples comparisons; the staging buffer only ever engages
 * under Pipelined occupancy.
 *
 * Service times come from a ServiceModel: the production implementation
 * (SimServiceModel) runs sim::Accelerator once per (network, cloud-size
 * bucket, accelerator class) and memoizes RunResult::totalCycles — the
 * profiled-cost-table approach real serving stacks use, which keeps a
 * million-request simulation cheap while staying anchored to the
 * validated per-layer model. Tests inject fixed tables instead.
 *
 * Batching credit: requests in one batch share network weights, so the
 * batch is charged sum(per-request cycles) minus one weight-stream
 * reload per extra member, floored at the largest member (a batch can
 * never beat its slowest request). This mirrors how PointAcc's fusion
 * amortizes DRAM traffic within one inference.
 *
 * Kernel-map caching: with SchedulerConfig::mapCache enabled, the
 * scheduler consults a content-addressed map cache (runtime/map_cache)
 * at dispatch. A batch of cache hits collapses its front-end phase to
 * a clamped cache-read cost (min(hitReadCycles * |B|, full map phase),
 * so a hit is never slower than a miss); a batch of misses runs the
 * full mapping and inserts its members' maps when the mapping phase
 * completes. Hits and misses never share a batch (the batcher's extra
 * compatibility rule), and the report carries the cache counters.
 *
 * Invariants (fuzzed by test_runtime_properties): requests are
 * conserved (generated = admitted + dropped, admitted = completed +
 * failed + leftover with failed == 0 on a fault-free run, and a
 * fault-free simulation always drains to leftover == 0);
 * per-stage busy cycles never exceed the simulated span; completion
 * timestamps are non-decreasing; equal seeds give byte-identical
 * reports; pipelined occupancy never finishes later than monolithic,
 * and an enabled map cache never finishes later than a disabled one
 * (single-instance FIFO, batching off).
 *
 * Clock domains: each fleet member carries its own
 * AcceleratorConfig::freqGHz, and mixed-frequency fleets are first-
 * class (the paper's server-vs-edge split, Table 3). Profiled costs
 * live in per-instance cycles; the scheduler converts them to the ns
 * event axis at dispatch (cyclesToNs / phasesToNs below), so two
 * instances of different clocks interleave on one queue exactly.
 * Request timestamps, deadlines, config knobs named *Cycles
 * (batcher.maxWaitCycles, mapCache.hitReadCycles, autoscaler
 * intervals) and every ServingReport timestamp are event-axis ticks —
 * nanoseconds. At 1 GHz one cycle is one ns, the conversion is the
 * identity, and the ns-domain engine is byte-identical to the frozen
 * cycle-domain seed engine (runtime/reference); the differential
 * suite in test_runtime_properties pins that on every CI run.
 */

#ifndef POINTACC_RUNTIME_SCHEDULER_HPP
#define POINTACC_RUNTIME_SCHEDULER_HPP

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <vector>

#include "nn/network.hpp"
#include "runtime/autoscaler.hpp"
#include "runtime/batcher.hpp"
#include "runtime/faults.hpp"
#include "runtime/map_cache.hpp"
#include "runtime/queue.hpp"
#include "runtime/serving_stats.hpp"
#include "runtime/workload.hpp"
#include "sim/accel_config.hpp"

namespace pointacc {

/** What a serving fleet can run: networks x cloud-size buckets. */
struct ServingCatalog
{
    std::vector<Network> networks;
    /** Cloud scale per size bucket (dataset `generate` scale factor). */
    std::vector<double> bucketScales;
    /** Seed for the profiling clouds. */
    std::uint64_t cloudSeed = 20211018;
};

/**
 * Two-stage split of a service time: the Mapping Unit front-end phase
 * and the Matrix Unit + memory back-end phase. The phases partition
 * the whole service time (map + backend == total), so a pipelined
 * instance can overlap the map phase of one dispatch with the backend
 * of the previous one.
 */
struct PhaseProfile
{
    std::uint64_t mapCycles = 0;
    std::uint64_t backendCycles = 0;

    std::uint64_t total() const { return mapCycles + backendCycles; }
};

/**
 * Convert `cycles` at `freq_ghz` to nanoseconds on the global event
 * axis. Exact (the identity) at 1 GHz — the property the differential
 * gates against the cycle-domain reference engine rely on; otherwise
 * rounded to the nearest ns.
 */
std::uint64_t cyclesToNs(std::uint64_t cycles, double freq_ghz);

/** A phase split converted to ns. The total is converted once and the
 *  map phase clamped into it, so the ns phases partition the ns total
 *  exactly — per-phase rounding can never create or lose a tick. */
PhaseProfile phasesToNs(const PhaseProfile &phases, double freq_ghz);

/** Profiled cost of one (network, bucket) on one accelerator class. */
struct ServiceProfile
{
    std::uint64_t totalCycles = 0;
    std::uint64_t mappingCycles = 0;
    std::uint64_t computeCycles = 0;
    /** Cycles spent streaming the parameter set from DRAM; the share a
     *  batch member amortizes away. */
    std::uint64_t weightLoadCycles = 0;
    /** Modelled size of the run's kernel maps in bytes — what one
     *  map-cache entry of this (network, bucket) class stores. */
    std::uint64_t mapBytes = 0;

    /** Phase split: map = profiled mapping cycles (clamped into the
     *  total), backend = the exact remainder (compute + exposed DRAM,
     *  see RunResult::backendPhaseCycles). */
    PhaseProfile
    phases() const
    {
        PhaseProfile p;
        p.mapCycles = mappingCycles < totalCycles ? mappingCycles
                                                  : totalCycles;
        p.backendCycles = totalCycles - p.mapCycles;
        return p;
    }
};

/** Service-time oracle consulted by the scheduler. */
class ServiceModel
{
  public:
    virtual ~ServiceModel() = default;

    /** Cost of one request of (network, bucket) on `cfg`. */
    virtual ServiceProfile profile(const AcceleratorConfig &cfg,
                                   std::uint32_t network_id,
                                   std::uint32_t bucket) const = 0;

    /**
     * Content hash of the network's layer configuration — the third
     * component of the kernel-map cache key (runtime/map_cache), so
     * two networks that happen to share an id across catalogs, or one
     * whose layer stack changed, can never share cached maps. The
     * default mixes the id alone (enough for fixed test tables);
     * SimServiceModel hashes the catalog network's actual layers.
     */
    virtual std::uint64_t layerConfigHash(std::uint32_t network_id) const;

    /**
     * Service cycles for a whole batch on `cfg`:
     *   max( sum_i cycles_i - (|B|-1) * min_i weightLoadCycles_i,
     *        max_i cycles_i ).
     * The min makes the credit order-independent and conservative
     * when size buckets (whose caps differ) mix within one batch.
     */
    std::uint64_t batchServiceCycles(const AcceleratorConfig &cfg,
                                     const Batch &batch) const;

    /**
     * Phase split of a whole batch: the map phase is the sum of the
     * members' mapping phases (mapping shares nothing across members,
     * so it never amortizes), clamped into the batch's total service
     * time; the backend phase is the exact remainder, which is where
     * the weight-reload credit lands. batchPhases(...).total() ==
     * batchServiceCycles(...) always.
     */
    PhaseProfile batchPhases(const AcceleratorConfig &cfg,
                             const Batch &batch) const;
};

/**
 * ServiceModel backed by the PointAcc simulator. Profiles lazily and
 * memoizes per (accelerator name, network, bucket); a homogeneous
 * 4-instance fleet profiles each pair exactly once.
 *
 * Thread safety: one model instance may be shared by concurrent
 * probes (the ProbeExecutor runs planner probes and bench rows in
 * parallel against a single model). The memo caches and the
 * profiled-runs meter sit behind a shared mutex — lookups of an
 * already-profiled triple take the (uncontended, read-side) shared
 * lock; only a first-time profile of a triple takes the exclusive
 * lock, re-checks, and simulates. Each distinct triple is therefore
 * still simulated exactly once per process, whatever the thread
 * count, and profiledRuns() keeps its memoization-meter meaning.
 * Measured (docs/PERFORMANCE.md): the read-side lock is invisible
 * next to the event-loop work a probe does per request.
 */
class SimServiceModel : public ServiceModel
{
  public:
    explicit SimServiceModel(ServingCatalog catalog);

    const ServingCatalog &catalog() const { return cat; }

    ServiceProfile profile(const AcceleratorConfig &cfg,
                           std::uint32_t network_id,
                           std::uint32_t bucket) const override;

    std::uint64_t layerConfigHash(std::uint32_t network_id) const override;

    /** Actual sim::Accelerator runs performed so far — the memoization
     *  meter. Across any number of sweep rows in one process this must
     *  equal the number of distinct (accelerator class, network,
     *  bucket) triples profiled; bench_serving gates on it. */
    std::uint64_t
    profiledRuns() const
    {
        std::shared_lock<std::shared_mutex> lock(memoMutex);
        return numProfiledRuns;
    }

  private:
    const PointCloud &cloudFor(std::uint32_t network_id,
                               std::uint32_t bucket) const;

    ServingCatalog cat;
    using Key = std::tuple<std::string, std::uint32_t, std::uint32_t>;
    /** Guards every mutable member below: shared for memo hits,
     *  exclusive for first-time profiling (see class comment). */
    mutable std::shared_mutex memoMutex;
    mutable std::map<Key, ServiceProfile> cache;
    mutable std::map<std::pair<std::uint32_t, std::uint32_t>, PointCloud>
        clouds;
    /** Parameter bytes per network (accelerator-independent). */
    mutable std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
        weightBytes;
    mutable std::uint64_t numProfiledRuns = 0;
};

/** How a dispatch occupies an accelerator instance. */
enum class OccupancyModel
{
    /** One opaque busy interval per dispatch; the instance accepts
     *  new work only when fully idle (pre-pipelining behavior). */
    Monolithic,
    /** Two-stage pipeline: the map phase of the next dispatch overlaps
     *  the back-end of the previous one on the same instance. */
    Pipelined,
};

std::string toString(OccupancyModel model);

/** Scheduler knobs. */
struct SchedulerConfig
{
    QueuePolicy policy = QueuePolicy::Fifo;
    OccupancyModel occupancy = OccupancyModel::Pipelined;
    BatcherConfig batcher;
    /** Cross-request kernel-map cache (disabled by default). */
    MapCacheConfig mapCache;
    /** Admission queue bound; overload beyond it sheds load. */
    std::size_t queueDepth = 1024;
    /** How many batches the Mapping Unit front-end may run ahead of
     *  the back-end under Pipelined occupancy: 1 (the default) is the
     *  blocking handoff — one mapping + one executing, byte-identical
     *  to the frozen reference engine — and depth k adds a k-1 deep
     *  FIFO of mapped-but-not-executed batches between the stages.
     *  Must be >= 1 (validated at construction); ignored under
     *  Monolithic occupancy, which never overlaps stages. */
    std::uint32_t runAheadDepth = 1;
    /** Reactive fleet scaling (runtime/autoscaler). Disabled by
     *  default: the whole fleet serves from cycle 0 and the scheduler
     *  output is byte-identical to pre-autoscaler builds. */
    AutoscalerConfig autoscaler;
    /** Fault injection (runtime/faults): scheduled/stochastic instance
     *  crashes, recoveries and straggler slowdowns on the ns axis.
     *  Disabled by default — and a program that materializes no
     *  events injects nothing, so the fault-free path stays
     *  byte-identical to pre-fault builds. */
    FaultProgram faults;
    /** What happens to requests a crash kills in flight: bounded
     *  exponential-backoff retries, per-request timeout, optional
     *  hedged duplicates (runtime/faults). Disabled: crash victims
     *  fail terminally. */
    RetryPolicy retry;
};

/** Discrete-event serving simulation over a fleet of accelerators. */
class FleetScheduler
{
  public:
    /**
     * @param fleet          one config per accelerator instance; clock
     *                       frequencies may differ per member (each
     *                       instance's profiled cycles convert to the
     *                       ns event axis at dispatch)
     * @param model          service-time oracle (outlives the scheduler)
     * @param bucket_scales  the catalog's size buckets (batcher rule)
     * @param config         queue/batch policy knobs
     */
    FleetScheduler(std::vector<AcceleratorConfig> fleet,
                   const ServiceModel &model,
                   std::vector<double> bucket_scales,
                   SchedulerConfig config = {});

    const SchedulerConfig &config() const { return cfg; }

    /**
     * Serve `arrivals` (any order; sorted internally) to completion:
     * the simulation always drains, so every admitted request either
     * completes or — never, by construction — lingers; the report's
     * conservation counters make that checkable.
     */
    ServingReport run(std::vector<Request> arrivals) const;

    /**
     * Serve a lazily generated trace: arrivals are pulled from
     * `source` in arrival order as simulated time reaches them, so a
     * million-request run holds only in-flight state — the queue, the
     * pipelines and the event heap — never the whole trace. The vector
     * overload is this one over a VectorRequestSource.
     */
    ServingReport run(RequestSource &source) const;

  private:
    std::vector<AcceleratorConfig> fleet;
    const ServiceModel &model;
    std::vector<double> bucketScales;
    SchedulerConfig cfg;
};

} // namespace pointacc

#endif // POINTACC_RUNTIME_SCHEDULER_HPP
