/**
 * @file
 * Traffic programs: non-stationary arrival generation for the serving
 * runtime.
 *
 * The workload layer (runtime/workload) generates *stationary*
 * Poisson/bursty arrivals — one rate, forever. Production point-cloud
 * serving does not look like that: load follows the day (diurnal
 * swings), spikes when an event draws a crowd of AR clients at once
 * (flash crowds), and the population of LiDAR streams feeding the
 * fleet turns over, which churns the kernel-map cache's working set.
 * A TrafficProgram describes exactly those effects as data:
 *
 *  - a piecewise-constant rate profile (RatePhase list) over the
 *    base WorkloadSpec — a Markov-modulated Poisson process whose
 *    modulating chain is a deterministic schedule, which is what a
 *    capacity question ("does this fleet survive Monday morning?")
 *    actually needs: the worst case is replayable, not sampled;
 *  - stream churn (ChurnSpec): every intervalCycles the per-stream
 *    frame history resets, so the next frame of every stream is fresh
 *    geometry with a brand-new cloudId — the map cache's resident
 *    entries become garbage exactly the way a fleet handover or a
 *    rotated client population makes them garbage;
 *  - presets (flashCrowdProgram, diurnalProgram) for the two shapes
 *    every serving paper plots, and schedule-file replay
 *    (writeSchedule / readSchedule) so a recorded trace — generated
 *    or captured — can be re-served bit-for-bit.
 *
 * TrafficStream emits a program lazily behind the same RequestSource
 * interface the scheduler already consumes, so the event loop is
 * untouched. Rate changes use the exact piecewise-exponential
 * construction (draw a gap at the current segment's rate; if it
 * crosses the next boundary, restart the draw *at* the boundary under
 * the new rate — valid by memorylessness), and every per-event draw
 * (gap, burst size, class pick, per-member reuse) happens in the
 * WorkloadStream's exact order. A program with no phases and no churn
 * is therefore byte-identical to the stationary stream with the same
 * spec — the anchor property test that pins this layer to the seed
 * generator's contract.
 *
 * Invariants (fuzzed by test_runtime_properties): per-segment arrival
 * counts match the analytic expectation rate * length; the stationary
 * anchor above; materialize() output is sorted by arrivalOrderBefore
 * with ids dense from 0; writeSchedule -> readSchedule round-trips to
 * the identical request vector (and identical serving JSON when
 * served); readSchedule rejects malformed input with
 * std::invalid_argument, never garbage requests.
 */

#ifndef POINTACC_RUNTIME_TRAFFIC_HPP
#define POINTACC_RUNTIME_TRAFFIC_HPP

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <queue>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "runtime/workload.hpp"

namespace pointacc {

/** One piecewise-rate segment boundary: from startCycle on, arrivals
 *  run at requestsPerMCycle (until the next phase, or forever). The
 *  span before the first phase runs at the base spec's rate. */
struct RatePhase
{
    std::uint64_t startCycle = 0;
    double requestsPerMCycle = 1.0;
};

/** Stream-churn knob: every intervalCycles the per-stream frame
 *  history resets, so each stream's next frame is fresh geometry with
 *  a new cloudId — repeated-frame map-cache locality is destroyed at
 *  every boundary (0 = never churn). */
struct ChurnSpec
{
    std::uint64_t intervalCycles = 0;
};

/** A full arrival program: base spec + rate schedule + churn. */
struct TrafficProgram
{
    std::string name = "traffic";
    /** Supplies everything a rate alone does not: seed, horizon,
     *  arrival process shape, burst size and the class mix. Its
     *  requestsPerMCycle is the rate before the first phase. */
    WorkloadSpec base;
    /** Rate schedule, sorted by strictly increasing startCycle;
     *  empty = stationary at the base rate. */
    std::vector<RatePhase> phases;
    ChurnSpec churn;

    /** Largest rate any segment runs at (>= base rate). */
    double peakRequestsPerMCycle() const;
};

/**
 * Validate a TrafficProgram, throwing std::invalid_argument on the
 * first violation: an invalid base spec (see validateWorkloadSpec),
 * phases not strictly increasing in startCycle, or a non-positive /
 * non-finite phase rate.
 */
void validateTrafficProgram(const TrafficProgram &program);

/** Flash crowd: base rate, then multiplier * base over the window
 *  [start_frac, start_frac + duration_frac) of the horizon, then base
 *  again. Throws std::invalid_argument on a non-positive multiplier
 *  or a window outside (0, 1]. */
TrafficProgram flashCrowdProgram(const WorkloadSpec &base,
                                 double multiplier, double start_frac,
                                 double duration_frac);

/** Diurnal swing: rate follows a raised-cosine day profile between
 *  the base rate (trough) and peak_factor * base (peak), sampled as
 *  steps_per_period piecewise-constant segments per period, repeated
 *  to the horizon. Throws std::invalid_argument on peak_factor < 1,
 *  period_cycles == 0 or steps_per_period < 2. */
TrafficProgram diurnalProgram(const WorkloadSpec &base,
                              std::uint64_t period_cycles,
                              double peak_factor,
                              std::uint32_t steps_per_period);

/** What a serving run saw of its traffic program — carried on the
 *  ServingReport so writeServingJson can emit the traffic_* block
 *  (emitted only when present, so stationary reports stay
 *  byte-identical to pre-traffic output). */
struct TrafficTelemetry
{
    bool present = false;
    std::string program;
    std::uint64_t segments = 0; ///< piecewise-rate segments (>= 1)
    double basePerMCycle = 0.0;
    double peakPerMCycle = 0.0;
    std::uint64_t churnIntervalCycles = 0;
    std::uint64_t churnEvents = 0; ///< churn boundaries actually crossed
};

/**
 * Lazy arrival stream over a TrafficProgram: WorkloadStream's
 * streaming contract (O(in-flight + classes) memory, bounded reorder
 * heap, arrivalOrderBefore emission order) generalized to a
 * piecewise rate schedule plus stream churn. See the file header for
 * the draw-order guarantee.
 */
class TrafficStream : public RequestSource
{
  public:
    /** Validates the program (std::invalid_argument on violation). */
    explicit TrafficStream(const TrafficProgram &program);

    const Request *peek() override;
    Request take() override;

    /** Telemetry snapshot (program shape + churn events so far);
     *  meaningful after the stream has been drained. */
    TrafficTelemetry telemetry() const;

    std::uint64_t emitted() const { return numEmitted; }
    std::size_t peakBuffered() const { return peak; }

  private:
    /** One resolved piecewise-rate segment. */
    struct Segment
    {
        double startCycle = 0.0;
        double meanGap = 1.0; ///< mean inter-event gap at this rate
        double ratePerMCycle = 0.0;
    };

    struct LaterArrival
    {
        bool
        operator()(const Request &a, const Request &b) const
        {
            return arrivalOrderBefore(b, a);
        }
    };

    /** Next event time after `from`: piecewise-exponential draw with
     *  restart-at-boundary (memorylessness). */
    double drawNextEventTime(double from);

    void refill();
    std::optional<Request> nextInternal();

    TrafficProgram prog;
    std::vector<Segment> segments;
    Rng rng;
    double totalWeight = 0.0;
    double clock = 0.0;
    std::uint64_t nextEventCycle = 0;
    bool exhausted = false;
    std::uint64_t nextId = 0;
    std::uint64_t nextCloudId = 1;
    std::map<std::uint32_t, std::uint64_t> lastFrame;
    std::priority_queue<Request, std::vector<Request>, LaterArrival>
        pending;
    std::optional<Request> lookahead;
    std::size_t peak = 0;
    std::uint64_t numEmitted = 0;
    std::uint64_t churnEpoch = 0;
    std::uint64_t churnEvents = 0;
};

/** Drain a program into a sorted trace (ids dense from 0). When
 *  `telemetry` is non-null it receives the drained stream's snapshot
 *  — the vector-entry-point analogue of running a TrafficStream and
 *  reading telemetry() afterwards. */
std::vector<Request> materialize(const TrafficProgram &program,
                                 TrafficTelemetry *telemetry = nullptr);

/**
 * Schedule-file replay. writeSchedule records a trace as a versioned
 * text schedule (one request per line); readSchedule parses one back,
 * throwing std::invalid_argument on a bad magic/version, a malformed
 * or truncated row, or rows out of arrival order. A recorded schedule
 * replayed through VectorRequestSource serves byte-identically to the
 * stream that produced it (pinned by test_runtime_properties).
 */
void writeSchedule(std::ostream &os, const std::vector<Request> &trace);
std::vector<Request> readSchedule(std::istream &is);

} // namespace pointacc

#endif // POINTACC_RUNTIME_TRAFFIC_HPP
