/**
 * @file
 * Scenario: LiDAR semantic segmentation for autonomous driving.
 *
 * A 64-beam LiDAR produces a sweep every 100 ms. This example runs
 * MinkowskiUNet over synthetic SemanticKITTI-style sweeps of growing
 * size on PointAcc and on the GPU baseline, and reports whether each
 * platform holds the 10 Hz real-time budget — the motivating workload
 * of the paper's introduction.
 */

#include <cstdio>

#include "baselines/platform.hpp"
#include "datasets/synthetic.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"

using namespace pointacc;

int
main()
{
    const auto net = minkowskiUNetOutdoor();
    Accelerator accel(pointAccConfig());
    constexpr double kBudgetMs = 100.0; // 10 Hz LiDAR

    std::printf("MinkowskiUNet (SemanticKITTI, 19 classes), 10 Hz "
                "budget = %.0f ms\n\n", kBudgetMs);
    std::printf("%10s %14s %12s %14s %12s\n", "#points", "PointAcc ms",
                "real-time", "RTX2080Ti ms", "real-time");

    for (double scale : {0.05, 0.1, 0.2, 0.4}) {
        const auto cloud =
            generate(DatasetKind::SemanticKITTI, 99, scale);
        const auto ours = accel.run(net, cloud);
        const auto gpu = estimatePlatform(
            rtx2080Ti(), net.notation, summarizeWorkload(net, cloud));
        std::printf("%10zu %14.2f %12s %14.2f %12s\n", cloud.size(),
                    ours.latencyMs(),
                    ours.latencyMs() < kBudgetMs ? "yes" : "NO",
                    gpu.totalMs(),
                    gpu.totalMs() < kBudgetMs ? "yes" : "NO");
    }

    // Per-stage profile of the largest run: where do cycles go?
    const auto cloud = generate(DatasetKind::SemanticKITTI, 99, 0.4);
    const auto r = accel.run(net, cloud);
    std::printf("\nTop-5 layers by cycles (%zu points):\n",
                cloud.size());
    std::vector<const LayerStats *> byCycles;
    for (const auto &ls : r.layers)
        byCycles.push_back(&ls);
    std::sort(byCycles.begin(), byCycles.end(),
              [](const auto *a, const auto *b) {
                  return a->totalCycles > b->totalCycles;
              });
    for (std::size_t i = 0; i < 5 && i < byCycles.size(); ++i) {
        const auto *ls = byCycles[i];
        std::printf("  %-22s %10.3f ms  (%llu maps, miss rate %.1f%%)\n",
                    ls->name.c_str(),
                    static_cast<double>(ls->totalCycles) / 1e6,
                    static_cast<unsigned long long>(ls->maps),
                    100.0 * ls->cacheMissRate);
    }
    return 0;
}
