/**
 * @file
 * Sizing a PointAcc fleet for an SLO instead of measuring one by hand.
 *
 *  1. Define a catalog and one millisecond-scale mixed workload with
 *     repeated-frame streams (so the kernel-map cache axis matters).
 *  2. State the SLO an operator would: p99 within a latency budget,
 *     plus a minimum throughput.
 *  3. Let the CapacityPlanner search fleet size x admission policy x
 *     map-cache over deterministic serving simulations: galloping +
 *     bisection on the fleet axis, exhaustive over the categorical
 *     axes, monotonicity spot-verified.
 *  4. Compare against exhaustive grid search: same answer, a fraction
 *     of the probes.
 *  5. Dump the machine-readable PlanReport (writePlanJson).
 *  6. Ask the heterogeneous question: the paper's Table 3
 *     server/edge split as a composition lattice under the watts
 *     objective — the cheapest mixed fleet, in nominal watts, that
 *     holds the same SLO inside a watt budget.
 */

#include <cstdio>
#include <sstream>

#include "nn/zoo.hpp"
#include "runtime/planner.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/workload.hpp"
#include "sim/accel_config.hpp"

using namespace pointacc;

int
main()
{
    // 1. Catalog and workload: object classification bulk plus scene
    // segmentation tail, every class a repeated-frame stream.
    ServingCatalog catalog;
    catalog.networks = {pointNet(), miniMinkowskiUNet()};
    catalog.bucketScales = {0.05, 0.1};
    SimServiceModel model(catalog);

    WorkloadSpec spec;
    spec.seed = 11;
    spec.horizonCycles = 30'000'000; // 30 ms of arrivals at 1 GHz
    spec.arrivals = ArrivalProcess::Bursty;
    spec.meanBurstSize = 4;
    spec.requestsPerMCycle = 40.0;
    spec.mix = {
        {0, 0, 3.0, 0, 0, 0.6}, // PointNet objects, stream 0
        {1, 1, 1.0, 0, 1, 0.6}, // scenes, stream 1
    };

    // 2. The SLO: p99 within 2 Mcycles (2 ms at 1 GHz) and at least
    // 30000 completed requests per second.
    SloSpec slo;
    slo.maxP99Cycles = 2'000'000;
    slo.minThroughputRps = 30'000.0;

    // 3. The search space: up to 12 server instances, FIFO vs EDF,
    // map cache off vs on; occupancy/queueing fixed in the base.
    PlanSearchSpace space;
    space.minFleetSize = 1;
    space.maxFleetSize = 12;
    space.policies = {QueuePolicy::Fifo, QueuePolicy::Edf};
    space.batchers = {BatcherAxisPoint{}};
    space.mapCacheOptions = {false, true};
    space.base.queueDepth = 256;
    space.base.mapCache.capacityEntries = 1024;
    space.base.mapCache.hitReadCycles = 2'000;

    CapacityPlanner planner(pointAccConfig(), model,
                            catalog.bucketScales);
    const PlanReport plan = planner.plan(spec, slo, space);

    std::printf("SLO: p99 <= %.1f Mcycles, throughput >= %.0f req/s\n",
                static_cast<double>(slo.maxP99Cycles) / 1e6,
                slo.minThroughputRps);
    if (!plan.feasible) {
        std::printf("no configuration in the space meets the SLO\n");
        return 1;
    }
    std::printf("cheapest fleet: %zu x %s, policy %s, map cache %s\n",
                plan.chosen.fleetSize, pointAccConfig().name.c_str(),
                toString(plan.chosen.policy).c_str(),
                plan.chosen.mapCacheOn ? "on" : "off");
    std::printf("  p99 %.2f Mcycles (margin %.2f), %.0f req/s "
                "(margin %.0f)\n",
                plan.chosen.p99Cycles / 1e6,
                plan.p99MarginCycles / 1e6, plan.chosen.throughputRps,
                plan.throughputMarginRps);

    std::printf("\nprobe log (%llu probes, fleet axis monotone: %s):\n",
                static_cast<unsigned long long>(plan.probesSpent),
                plan.monotoneFleetAxis ? "yes" : "no");
    for (const auto &p : plan.probes)
        std::printf("  fleet %2zu %-4s cache %-3s -> p99 %7.2f Mcycles, "
                    "%6.0f req/s  %s\n",
                    p.fleetSize, toString(p.policy).c_str(),
                    p.mapCacheOn ? "on" : "off", p.p99Cycles / 1e6,
                    p.throughputRps, p.meetsSlo ? "meets SLO" : "-");

    // 4. The same question answered the brute-force way.
    const PlanReport grid = planner.planExhaustive(spec, slo, space);
    std::printf("\nexhaustive search: fleet %zu, policy %s, cache %s "
                "in %llu probes — planner spent %llu (%.0f%%)\n",
                grid.chosen.fleetSize,
                toString(grid.chosen.policy).c_str(),
                grid.chosen.mapCacheOn ? "on" : "off",
                static_cast<unsigned long long>(grid.probesSpent),
                static_cast<unsigned long long>(plan.probesSpent),
                100.0 * static_cast<double>(plan.probesSpent) /
                    static_cast<double>(grid.probesSpent));

    // 5. Machine-readable report.
    std::ostringstream json;
    writePlanJson(json, plan);
    std::printf("\nJSON: %s", json.str().c_str());

    // 6. The heterogeneous question. Kinds are the paper's Table 3
    // parts; cost is nominal watts per instance (static leakage plus
    // the MAC array at full issue), and the budget caps the whole
    // composition — the planner searches the lattice ray by ray with
    // the same gallop+bisect and returns the cheapest passing mix.
    PlanSearchSpace hetero;
    InstanceKindSpec server;
    server.config = pointAccConfig();
    server.maxCount = 8;
    InstanceKindSpec edge;
    edge.config = pointAccEdgeConfig();
    edge.maxCount = 4;
    hetero.kinds = {server, edge};
    hetero.objective = PlanObjective::Watts;
    hetero.maxCostBudget = 6.0 * nominalWatts(server.config);
    hetero.policies = {QueuePolicy::Fifo};
    hetero.batchers = {BatcherAxisPoint{}};
    hetero.mapCacheOptions = {true};
    hetero.base = space.base;

    const PlanReport mixed = planner.plan(spec, slo, hetero);
    std::printf("\nwatt-budget lattice: %s %.2f W/instance, %s "
                "%.2f W/instance, budget %.1f W\n",
                server.config.name.c_str(),
                nominalWatts(server.config), edge.config.name.c_str(),
                nominalWatts(edge.config), hetero.maxCostBudget);
    if (!mixed.feasible) {
        std::printf("no composition inside the budget meets the SLO\n");
        return 1;
    }
    std::printf("cheapest mix: %zu x %s + %zu x %s = %.2f W "
                "(p99 %.2f Mcycles, %.0f req/s, %llu of %llu probes)\n",
                mixed.chosen.composition[0], server.config.name.c_str(),
                mixed.chosen.composition[1], edge.config.name.c_str(),
                mixed.chosen.cost, mixed.chosen.p99Cycles / 1e6,
                mixed.chosen.throughputRps,
                static_cast<unsigned long long>(mixed.probesSpent),
                static_cast<unsigned long long>(mixed.exhaustiveProbes));
    return 0;
}
