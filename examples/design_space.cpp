/**
 * @file
 * Scenario: design-space exploration with the simulator.
 *
 * The AcceleratorConfig struct exposes every sizing knob of the
 * architecture. This example sweeps the systolic-array size, the
 * Mapping Unit merger width and the cache block size on a fixed
 * workload, printing latency / energy / area-proxy trade-offs — the
 * workflow an architect would use to size a derivative of PointAcc.
 */

#include <cstdio>

#include "datasets/synthetic.hpp"
#include "mpu/alt_engines.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"

using namespace pointacc;

int
main()
{
    const auto net = minkowskiUNetIndoor();
    const auto cloud = generate(DatasetKind::S3DIS, 11, 0.25);
    std::printf("workload: %s on %zu points\n\n", net.notation.c_str(),
                cloud.size());

    std::printf("[systolic array sweep]\n%8s %14s %12s %10s\n", "PEs",
                "latency ms", "energy mJ", "EDP");
    for (std::uint32_t dim : {16u, 32u, 64u, 128u}) {
        auto cfg = pointAccConfig();
        cfg.mxu = MxuConfig{dim, dim};
        // Scale static power with the array area.
        cfg.energy.staticPowerW =
            10.0 * static_cast<double>(dim) * dim / (64.0 * 64.0);
        Accelerator accel(cfg);
        const auto r = accel.run(net, cloud);
        std::printf("%5ux%-3u %14.2f %12.2f %10.1f\n", dim, dim,
                    r.latencyMs(), r.energyMJ(),
                    r.latencyMs() * r.energyMJ());
    }

    std::printf("\n[MPU merger width sweep] (mapping cycles only)\n");
    std::printf("%8s %16s %14s\n", "width", "mapping Mcycles",
                "sorter area");
    for (std::size_t width : {16u, 32u, 64u, 128u}) {
        auto cfg = pointAccConfig();
        cfg.mpu = MpuConfig{width, width, 13};
        Accelerator accel(cfg);
        const auto r = accel.run(net, cloud);
        std::printf("%8zu %16.2f %14.0f\n", width,
                    static_cast<double>(r.mappingCycles) / 1e6,
                    mergeSorterAreaUnits(width));
    }

    std::printf("\n[cache block size sweep]\n%8s %14s %14s\n", "block",
                "DRAM MB", "latency ms");
    for (std::uint32_t block : {1u, 4u, 16u, 64u}) {
        Accelerator accel(pointAccConfig());
        RunOptions opt;
        opt.cacheBlockPoints = block;
        const auto r = accel.run(net, cloud, opt);
        std::printf("%8u %14.2f %14.2f\n", block,
                    static_cast<double>(r.dramReadBytes +
                                        r.dramWriteBytes) /
                        1e6,
                    r.latencyMs());
    }
    return 0;
}
