/**
 * @file
 * Serving a mixed point-cloud workload on a heterogeneous fleet.
 *
 *  1. Define a catalog: which networks the fleet serves, at which
 *     cloud-size buckets.
 *  2. Generate one millisecond of bursty open-loop traffic mixing
 *     object classification with scene segmentation (the latter with
 *     a soft deadline).
 *  3. Serve it on a fleet of one PointAcc server plus two
 *     PointAcc.Edge instances with deadline-aware scheduling and
 *     wait-for-K batching, and print the operator's view: tail
 *     latency, throughput, utilization per instance, drops, deadline
 *     misses.
 *  4. Re-run the same trace with monolithic occupancy to show what
 *     the two-stage pipeline (mapping front-end overlapping the
 *     matrix/memory back-end) buys on the same hardware.
 *  5. Turn the traffic into repeated-frame streams (the same rigs
 *     re-uploading near-identical sweeps) and enable the kernel-map
 *     cache: hits collapse the mapping front-end to a cache read.
 */

#include <cstdio>
#include <sstream>

#include "nn/zoo.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/serving_stats.hpp"
#include "runtime/workload.hpp"
#include "sim/accel_config.hpp"

using namespace pointacc;

int
main()
{
    // 1. The catalog: two networks, two cloud-size buckets.
    ServingCatalog catalog;
    catalog.networks = {pointNet(), miniMinkowskiUNet()};
    catalog.bucketScales = {0.05, 0.1};
    SimServiceModel model(catalog);

    // 2. Bursty traffic: mostly small classification requests, plus
    // segmentation scenes that must finish within 2M cycles (2 ms at
    // 1 GHz) of arrival.
    WorkloadSpec spec;
    spec.seed = 7;
    spec.horizonCycles = 2'000'000; // 2 ms of arrivals at 1 GHz
    spec.arrivals = ArrivalProcess::Bursty;
    spec.meanBurstSize = 4;
    spec.requestsPerMCycle = 80.0;
    spec.mix = {
        {0, 0, 3.0, 0},          // PointNet objects, best-effort
        {1, 1, 1.0, 2'000'000},  // scenes with a 2 Mcycle deadline
    };
    const auto arrivals = WorkloadGenerator(spec).generate();
    std::printf("offered: %zu requests over %.1f ms (%s)\n",
                arrivals.size(),
                static_cast<double>(spec.horizonCycles) / 1e6,
                toString(spec.arrivals).c_str());

    // 3. One server + two edge instances, EDF + wait-for-K batching:
    // hold the head up to 100k cycles hoping to fill batches of 4.
    SchedulerConfig scfg;
    scfg.policy = QueuePolicy::Edf;
    scfg.occupancy = OccupancyModel::Pipelined;
    scfg.batcher.enabled = true;
    scfg.batcher.maxBatchSize = 8;
    scfg.batcher.targetK = 4;
    scfg.batcher.maxWaitCycles = 100'000;
    scfg.queueDepth = 128;

    std::vector<AcceleratorConfig> fleet = {
        pointAccConfig(), pointAccEdgeConfig(), pointAccEdgeConfig()};
    FleetScheduler sched(fleet, model, catalog.bucketScales, scfg);
    const ServingReport report = sched.run(arrivals);

    std::printf("%s\n\n", servingSummaryText(report).c_str());
    std::printf("per-instance (front-end / back-end stage util):\n");
    for (const auto &acc : report.accelerators)
        std::printf("  %-16s util %.2f (map %.2f, backend %.2f)  "
                    "%llu batches, %llu requests\n",
                    acc.name.c_str(),
                    acc.utilization(report.horizonCycles),
                    acc.mapUtilization(report.horizonCycles),
                    acc.backendUtilization(report.horizonCycles),
                    static_cast<unsigned long long>(acc.batches),
                    static_cast<unsigned long long>(acc.requests));

    // 4. Same trace, occupancy isolated: batching off in both runs
    // (with weight-amortizing batching enabled, eager pipelined
    // dispatch forms smaller batches and the two effects mix), so
    // the difference below is purely mapping/back-end overlap.
    SchedulerConfig pipeOnly = scfg;
    pipeOnly.batcher.enabled = false;
    SchedulerConfig monoOnly = pipeOnly;
    monoOnly.occupancy = OccupancyModel::Monolithic;
    FleetScheduler pipeSched(fleet, model, catalog.bucketScales, pipeOnly);
    FleetScheduler monoSched(fleet, model, catalog.bucketScales, monoOnly);
    const ServingReport pipeReport = pipeSched.run(arrivals);
    const ServingReport monoReport = monoSched.run(arrivals);
    std::printf("\npipelined vs monolithic (no batching): p99 %.3f vs "
                "%.3f ms, throughput %.0f vs %.0f req/s\n",
                pipeReport.p99Ms(), monoReport.p99Ms(),
                pipeReport.throughputRps(), monoReport.throughputRps());

    // 5. Repeated-frame streams + the kernel-map cache. Each class
    // becomes one stream whose frames repeat 80% of the time (a rig
    // holding mostly-static geometry between sweeps); the cache keys
    // maps by (cloud, network, layer-config hash), so a hit skips the
    // Mapping Unit front-end phase for the price of a map read. Run
    // on the lone server instance, where mixed traffic makes the
    // front-end bind (a scene's mapping after an object's short
    // back-end): that binding is exactly what a hit removes. (On the
    // full edge-heavy fleet the long edge back-ends hide every map
    // phase, so the cache saves work without moving the tail — the
    // overlap already covers it.)
    WorkloadSpec streamSpec = spec;
    for (std::size_t i = 0; i < streamSpec.mix.size(); ++i) {
        streamSpec.mix[i].streamId = static_cast<std::uint32_t>(i);
        streamSpec.mix[i].mapReuseProb = 0.8;
    }
    const auto streamArrivals = WorkloadGenerator(streamSpec).generate();
    SchedulerConfig cachedCfg = pipeOnly; // batching off: isolate cache
    cachedCfg.policy = QueuePolicy::Fifo;
    cachedCfg.mapCache.enabled = true;
    cachedCfg.mapCache.capacityEntries = 1024;
    cachedCfg.mapCache.hitReadCycles = 2'000;
    SchedulerConfig uncachedCfg = cachedCfg;
    uncachedCfg.mapCache.enabled = false;
    const std::vector<AcceleratorConfig> server = {pointAccConfig()};
    FleetScheduler cachedSched(server, model, catalog.bucketScales,
                               cachedCfg);
    FleetScheduler uncachedSched(server, model, catalog.bucketScales,
                                 uncachedCfg);
    const ServingReport cachedReport = cachedSched.run(streamArrivals);
    const ServingReport uncachedReport =
        uncachedSched.run(streamArrivals);
    std::printf("\nrepeated-frame streams on one server, map cache on "
                "vs off: mean %.3f vs %.3f ms, p99 %.3f vs %.3f ms\n",
                cachedReport.meanMs(), uncachedReport.meanMs(),
                cachedReport.p99Ms(), uncachedReport.p99Ms());
    std::printf("cache: %.0f%% hits, %llu insertions, %llu evictions, "
                "%.1f MB of kernel maps not recomputed\n",
                100.0 * cachedReport.mapCache.hitRate(),
                static_cast<unsigned long long>(
                    cachedReport.mapCache.insertions),
                static_cast<unsigned long long>(
                    cachedReport.mapCache.evictions),
                static_cast<double>(cachedReport.mapCache.bytesSaved) /
                    1e6);

    std::ostringstream json;
    writeServingJson(json, report);
    std::printf("\nJSON: %s", json.str().c_str());
    return 0;
}
