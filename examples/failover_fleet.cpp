/**
 * @file
 * Buying availability: sizing a fleet that holds its SLO through a
 * crash, then watching the spare earn its keep.
 *
 *  1. Define a catalog and a steady mixed workload at 2.2x one
 *     instance's capacity, plus a fault program: one instance crashes
 *     mid-run and stays down for half the horizon, in-flight work is
 *     killed, and a bounded-backoff retry policy re-admits the
 *     victims.
 *  2. Size the fleet twice with the CapacityPlanner: once fault-free
 *     (the nominal plan) and once with the fault program in the
 *     search space (the availability plan) — every candidate is then
 *     probed *under the crash*, so the planner pays for a spare
 *     exactly when the SLO needs one.
 *  3. Serve the same trace with both fleets under the same crash and
 *     compare: the nominal fleet blows its p99 while the outage eats
 *     its headroom; the availability fleet rides it out.
 *  4. Read the failure ledger — crashes, killed batches, retries,
 *     failovers (victims completing on another instance), goodput vs
 *     raw throughput.
 *  5. Dump the availability run's machine-readable report
 *     (writeServingJson: the fault_* / retry_* block rides along).
 */

#include <cstdio>
#include <sstream>
#include <vector>

#include "nn/zoo.hpp"
#include "runtime/faults.hpp"
#include "runtime/planner.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/workload.hpp"
#include "sim/accel_config.hpp"

using namespace pointacc;

int
main()
{
    // 1. Catalog, workload, and the outage. 2.2x single-instance load
    // means three healthy instances run comfortably (73% utilization)
    // and two saturate — losing one of three is exactly the regime
    // availability sizing is about.
    ServingCatalog catalog;
    catalog.networks = {pointNet(), miniMinkowskiUNet()};
    catalog.bucketScales = {0.05, 0.1};
    SimServiceModel model(catalog);

    WorkloadSpec spec;
    spec.seed = 29;
    spec.horizonCycles = 60'000'000; // 60 ms of arrivals at 1 GHz
    spec.mix = {
        {0, 0, 3.0, 0}, // PointNet objects, bulk of traffic
        {1, 1, 1.0, 0}, // segmentation scenes, the heavy tail
    };

    // Price the mix against one instance to express load in fractions
    // of single-instance capacity.
    double meanCycles = 0.0;
    double totalWeight = 0.0;
    for (const auto &cls : spec.mix) {
        const auto p = model.profile(pointAccConfig(), cls.networkId,
                                     cls.sizeBucket);
        meanCycles += cls.weight * static_cast<double>(p.totalCycles);
        totalWeight += cls.weight;
    }
    meanCycles /= totalWeight;
    spec.requestsPerMCycle = 2.2 * 1e6 / meanCycles;

    FaultProgram outage;
    outage.enabled = true;
    outage.horizonNs = 2 * spec.horizonCycles;
    outage.crashes.push_back(CrashWindow{
        0, spec.horizonCycles / 4, spec.horizonCycles / 2});

    RetryPolicy retry;
    retry.enabled = true;
    retry.maxRetries = 3;
    retry.backoffBaseNs = 1'000;

    std::printf("load %.2f req/Mcycle (2.2x one instance); instance 0 "
                "crashes at %llu Mcycles for %llu Mcycles\n",
                spec.requestsPerMCycle,
                static_cast<unsigned long long>(
                    outage.crashes[0].atNs / 1'000'000),
                static_cast<unsigned long long>(
                    outage.crashes[0].downForNs / 1'000'000));

    // 2. Two plans over the same search space: the only difference is
    // whether candidates are probed under the outage.
    const std::vector<Request> trace = WorkloadGenerator(spec).generate();

    PlanSearchSpace space;
    space.minFleetSize = 1;
    space.maxFleetSize = 6;
    space.base.queueDepth = 256;

    CapacityPlanner planner(pointAccConfig(), model, catalog.bucketScales);

    // SLO: 50% headroom over the smallest un-saturated fleet's
    // fault-free p99 — generous in good weather, binding in bad.
    const ServingReport calib = planner.probe(3, space.base, trace);
    SloSpec slo;
    slo.maxP99Cycles =
        static_cast<std::uint64_t>(1.5 * calib.p99Cycles()) + 1;

    const PlanReport nominal = planner.plan(spec, slo, space);

    PlanSearchSpace availSpace = space;
    availSpace.faults = outage;
    availSpace.retry = retry;
    const PlanReport avail = planner.plan(spec, slo, availSpace);

    if (!nominal.feasible || !avail.feasible) {
        std::printf("no fleet in [1, %zu] holds the SLO\n",
                    space.maxFleetSize);
        return 1;
    }
    std::printf("SLO p99 <= %.2f ms: nominal plan %zu instances, "
                "availability plan %zu (the spare)\n",
                static_cast<double>(slo.maxP99Cycles) / 1e6,
                nominal.chosen.fleetSize, avail.chosen.fleetSize);

    // 3. Same trace, same crash, both fleets. The scheduler config
    // carries the fault program and retry policy; the planner's
    // schedulerConfigFor maps a chosen probe back to that config.
    const SchedulerConfig faultedCfg =
        schedulerConfigFor(availSpace, avail.chosen);
    const auto runUnderOutage = [&](std::size_t fleetSize) {
        const std::vector<AcceleratorConfig> fleet(fleetSize,
                                                   pointAccConfig());
        FleetScheduler sched(fleet, model, catalog.bucketScales,
                             faultedCfg);
        return sched.run(trace);
    };
    const ServingReport nominalRep =
        runUnderOutage(nominal.chosen.fleetSize);
    const ServingReport availRep = runUnderOutage(avail.chosen.fleetSize);

    // 4. The failure ledger, side by side.
    const auto line = [&](const char *label, const ServingReport &rep,
                          std::size_t fleetSize) {
        std::printf("%-14s %zu instances: p99 %6.2f ms (%s), goodput "
                    "%5.0f of %5.0f rps, %llu in-flight kills, %llu "
                    "retries, %llu failovers, %llu failed\n",
                    label, fleetSize, rep.p99Ms(),
                    meetsSlo(rep, slo) ? "meets SLO" : "MISSES SLO",
                    rep.goodputRps(), rep.throughputRps(),
                    static_cast<unsigned long long>(
                        rep.faults.inflightFailed),
                    static_cast<unsigned long long>(
                        rep.faults.retryAttempts),
                    static_cast<unsigned long long>(
                        rep.faults.failovers),
                    static_cast<unsigned long long>(rep.failed));
    };
    std::printf("\nunder the outage:\n");
    line("nominal:", nominalRep, nominal.chosen.fleetSize);
    line("availability:", availRep, avail.chosen.fleetSize);

    // 5. Machine-readable report of the availability run: the fault
    // block (fault_* / retry_* keys) appears because faults ran.
    std::ostringstream json;
    writeServingJson(json, availRep);
    std::printf("\nJSON: %s", json.str().c_str());
    return 0;
}
