/**
 * @file
 * Scenario: 3-D detection on an embedded platform.
 *
 * Frustum PointNet++ (KITTI detection) must run per camera proposal on
 * an edge device. This example compares PointAcc.Edge against Jetson
 * boards and the Mesorasi accelerator, then shows the co-design story
 * of Fig. 16: switching the *network* to a SparseConv-based model that
 * Mesorasi cannot execute at all.
 */

#include <cstdio>

#include "baselines/mesorasi.hpp"
#include "baselines/platform.hpp"
#include "datasets/synthetic.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"

using namespace pointacc;

int
main()
{
    const auto net = fPointNetPP();
    const auto cloud = generate(DatasetKind::KITTI, 5, 0.5);
    Accelerator edge(pointAccEdgeConfig());

    std::printf("Frustum PointNet++ detection, %zu frustum points\n\n",
                cloud.size());
    std::printf("%-26s %12s %12s %10s\n", "platform", "latency ms",
                "energy mJ", "FPS");

    const auto ours = edge.run(net, cloud);
    std::printf("%-26s %12.2f %12.2f %10.0f\n", "PointAcc.Edge",
                ours.latencyMs(), ours.energyMJ(),
                1000.0 / ours.latencyMs());

    const auto w = summarizeWorkload(net, cloud);
    for (const auto *p : {&jetsonXavierNX(), &jetsonNano(),
                          &raspberryPi4()}) {
        const auto r = estimatePlatform(*p, net.notation, w);
        std::printf("%-26s %12.2f %12.2f %10.0f\n", p->name.c_str(),
                    r.totalMs(), r.energyMJ, 1000.0 / r.totalMs());
    }
    const auto mesorasi = runMesorasi(net, cloud);
    std::printf("%-26s %12.2f %12.2f %10.0f\n", "Mesorasi (HW)",
                mesorasi.totalMs(), mesorasi.energyMJ,
                1000.0 / mesorasi.totalMs());

    // The co-design move: a SparseConv-based network at equal task.
    const auto mini = miniMinkowskiUNet();
    const auto indoor = generate(DatasetKind::S3DIS, 6, 0.25);
    const auto oursMini = edge.run(mini, indoor);
    const auto mesoPnpp = runMesorasi(pointNetPPSemSeg(), indoor);
    const auto mesoMini = runMesorasi(mini, indoor);
    std::printf("\nCo-design on S3DIS segmentation (%zu points):\n",
                indoor.size());
    std::printf("  Mesorasi  + PointNet++SSG : %8.2f ms, mIoU %.1f\n",
                mesoPnpp.totalMs(), pointNetPPSemSeg().paperAccuracy);
    std::printf("  Mesorasi  + Mini-MinkUNet : %s\n",
                mesoMini.supported ? "supported?!" :
                "UNSUPPORTED (per-neighbor weights)");
    std::printf("  PointAcc.Edge + Mini-MinkUNet: %5.2f ms, mIoU %.1f "
                "(%.1fx faster, %+.1f mIoU)\n",
                oursMini.latencyMs(), mini.paperAccuracy,
                mesoPnpp.totalMs() / oursMini.latencyMs(),
                mini.paperAccuracy - pointNetPPSemSeg().paperAccuracy);
    return 0;
}
