/**
 * @file
 * Quickstart: the PointAcc library in ~60 lines.
 *
 *  1. generate a synthetic indoor point cloud;
 *  2. build kernel maps with the mergesort algorithm (what the Mapping
 *     Unit runs in hardware) and check them against the hash-table
 *     reference;
 *  3. run a real sparse convolution over the maps;
 *  4. simulate the same layer on the PointAcc accelerator and print
 *     cycles, DRAM traffic and energy.
 */

#include <cstdio>

#include "datasets/synthetic.hpp"
#include "mapping/kernel_map.hpp"
#include "mpu/mpu.hpp"
#include "nn/functional.hpp"
#include "nn/zoo.hpp"
#include "sim/accelerator.hpp"

using namespace pointacc;

int
main()
{
    // 1. A synthetic S3DIS-style room scan, sorted + deduplicated.
    PointCloud cloud = generate(DatasetKind::S3DIS, /*seed=*/42, 0.25);
    randomizeFeatures(cloud, /*channels=*/16, /*seed=*/7);
    std::printf("cloud: %zu points, density %.2e\n", cloud.size(),
                cloud.density());

    // 2. Kernel mapping (3x3x3 submanifold convolution).
    KernelMapConfig kcfg;
    kcfg.kernelSize = 3;
    const MapSet maps = sortKernelMap(cloud, cloud, kcfg);
    const MapSet check = hashKernelMap(cloud, cloud, kcfg);
    std::printf("kernel maps: %zu (mergesort) == %zu (hash table)\n",
                maps.size(), check.size());

    // ... and the same operation on the Mapping Unit hardware model.
    MappingUnit mpu;
    const auto hw = mpu.kernelMap(cloud, cloud, kcfg);
    std::printf("MPU: %llu cycles, %llu maps emitted\n",
                static_cast<unsigned long long>(hw.stats.cycles),
                static_cast<unsigned long long>(hw.stats.mapsEmitted));

    // 3. A real sparse convolution over those maps (16 -> 32 channels).
    const auto weights = randomWeights(maps.numWeights(), 16, 32, 1);
    const auto features = sparseConvForward(cloud, maps, weights,
                                            cloud.size());
    std::printf("conv out: %zu x 32 features, out[0][0] = %.4f\n",
                cloud.size(), features[0]);

    // 4. Simulate a whole network on PointAcc.
    Accelerator accel(pointAccConfig());
    const auto result = accel.run(miniMinkowskiUNet(), cloud);
    std::printf("\nMini-MinkowskiUNet on %s:\n",
                result.accelerator.c_str());
    std::printf("  latency %.3f ms  (mapping %.1f%%, matmul %.1f%%)\n",
                result.latencyMs(),
                100.0 * static_cast<double>(result.mappingCycles) /
                    static_cast<double>(result.totalCycles),
                100.0 * static_cast<double>(result.computeCycles) /
                    static_cast<double>(result.totalCycles));
    std::printf("  DRAM %.2f MB, energy %.3f mJ\n",
                static_cast<double>(result.dramReadBytes +
                                    result.dramWriteBytes) /
                    1e6,
                result.energyMJ());
    return 0;
}
