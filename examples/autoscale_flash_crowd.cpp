/**
 * @file
 * Surviving a flash crowd: static peak provisioning vs the reactive
 * autoscaler, on one replayable traffic program.
 *
 *  1. Define a catalog and a mixed streaming workload, then wrap it in
 *     a flash-crowd TrafficProgram: base rate, a 5x spike over 20% of
 *     the horizon, base again.
 *  2. Let the CapacityPlanner size the *static* fleet that holds the
 *     SLO through the spike — the peak-provisioned answer.
 *  3. Serve the same program twice over that instance pool: once with
 *     every instance up for the whole run, once with the autoscaler
 *     chasing the load from a one-instance floor (spin-up latency,
 *     cooldown, graceful drain all priced in).
 *  4. Read the scaling timeline and the bill: instance-cycles saved vs
 *     static provisioning, and what the tail paid for the savings.
 *  5. Dump the autoscaled run's machine-readable report
 *     (writeServingJson: traffic_* + autoscaler_* blocks).
 */

#include <cstdio>
#include <sstream>

#include "nn/zoo.hpp"
#include "runtime/planner.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/traffic.hpp"
#include "runtime/workload.hpp"
#include "sim/accel_config.hpp"

using namespace pointacc;

int
main()
{
    // 1. Catalog, base workload, and the program: steady streaming
    // load that quintuples over [30%, 50%) of the horizon — an event
    // pulls a crowd of AR clients onto the fleet, then releases them.
    ServingCatalog catalog;
    catalog.networks = {pointNet(), miniMinkowskiUNet()};
    catalog.bucketScales = {0.05, 0.1};
    SimServiceModel model(catalog);

    WorkloadSpec base;
    base.seed = 23;
    base.horizonCycles = 40'000'000; // 40 ms of arrivals at 1 GHz
    base.requestsPerMCycle = 12.0;
    base.mix = {
        {0, 0, 3.0, 0, 0, 0.6}, // PointNet objects, stream 0
        {1, 1, 1.0, 0, 1, 0.6}, // segmentation scenes, stream 1
    };

    const TrafficProgram program = flashCrowdProgram(base, 5.0, 0.3, 0.2);
    TrafficTelemetry telem;
    const std::vector<Request> trace = materialize(program, &telem);
    std::printf("program %s: %.1f req/Mcycle base, %.1f at peak, "
                "%llu requests over %llu Mcycles\n",
                program.name.c_str(), telem.basePerMCycle,
                telem.peakPerMCycle,
                static_cast<unsigned long long>(trace.size()),
                static_cast<unsigned long long>(base.horizonCycles /
                                                1'000'000));

    // 2. Size the static fleet: the cheapest instance count that keeps
    // p99 under 4 ms *through the crowd* (the planner probes the whole
    // program, so the answer is peak-provisioned by construction).
    SloSpec slo;
    slo.maxP99Cycles = 4'000'000;

    PlanSearchSpace space;
    space.minFleetSize = 1;
    space.maxFleetSize = 8;
    space.base.queueDepth = 512;

    CapacityPlanner planner(pointAccConfig(), model,
                            catalog.bucketScales);
    const PlanReport sized = planner.plan(program, slo, space);
    if (!sized.feasible) {
        std::printf("no fleet in [1, %zu] holds the SLO through the "
                    "crowd\n", space.maxFleetSize);
        return 1;
    }
    const std::size_t staticN = sized.chosen.fleetSize;
    std::printf("planner: %zu x %s holds p99 <= %.1f ms through the "
                "crowd (%llu probes)\n",
                staticN, pointAccConfig().name.c_str(),
                static_cast<double>(slo.maxP99Cycles) / 1e6,
                static_cast<unsigned long long>(sized.probesSpent));

    const std::vector<AcceleratorConfig> pool(staticN, pointAccConfig());

    // 3a. Static provisioning: every instance powered for the whole
    // run, served from the materialized trace.
    FleetScheduler staticSched(pool, model, catalog.bucketScales,
                               space.base);
    ServingReport staticRep = staticSched.run(trace);
    staticRep.traffic = telem;

    // 3b. The autoscaler over the same pool, from a one-instance
    // floor, driven through the streaming entry point. Spin-up and
    // cooldown are two evaluation periods each — the reactive lag the
    // comparison prices.
    SchedulerConfig autoCfg = space.base;
    autoCfg.autoscaler.enabled = true;
    autoCfg.autoscaler.minInstances = 1;
    autoCfg.autoscaler.maxInstances = static_cast<std::uint32_t>(staticN);
    autoCfg.autoscaler.initialInstances = 1;
    autoCfg.autoscaler.evalIntervalCycles = base.horizonCycles / 100;
    autoCfg.autoscaler.queueHighDepth = 16;
    autoCfg.autoscaler.queueLowDepth = 2;
    autoCfg.autoscaler.p99HighCycles = 2 * slo.maxP99Cycles;
    autoCfg.autoscaler.spinUpCycles =
        2 * autoCfg.autoscaler.evalIntervalCycles;
    autoCfg.autoscaler.cooldownCycles =
        2 * autoCfg.autoscaler.evalIntervalCycles;

    FleetScheduler autoSched(pool, model, catalog.bucketScales, autoCfg);
    TrafficStream stream(program);
    ServingReport autoRep = autoSched.run(stream);
    autoRep.traffic = stream.telemetry();

    // 4. The scaling timeline — the closed loop, plottable — and the
    // bill. instance_cycles integrates powered instances over the run
    // (spin-up and drain included), so static cost minus it is the
    // exact saving reactive scaling bought.
    std::printf("\nscaling timeline (eval every %llu Kcycles):\n",
                static_cast<unsigned long long>(
                    autoCfg.autoscaler.evalIntervalCycles / 1'000));
    for (const auto &s : autoRep.autoscaler.timeline.samples) {
        if (s.action == 0)
            continue; // print the decisions, not every hold
        std::printf("  cycle %9llu  queue %3llu  window p99 %7.2f "
                    "Mcycles  -> %s to %u\n",
                    static_cast<unsigned long long>(s.cycle),
                    static_cast<unsigned long long>(s.queueDepth),
                    static_cast<double>(s.windowP99Cycles) / 1e6,
                    s.action > 0 ? "scale UP  " : "scale DOWN",
                    s.provisioned);
    }

    const std::uint64_t staticCost =
        static_cast<std::uint64_t>(staticN) * autoRep.horizonCycles;
    const std::uint64_t autoCost = autoRep.autoscaler.instanceCycles;
    std::printf("\n%-18s p99 %6.2f ms  drops %4llu  cost %6llu "
                "Minstance-cycles\n",
                "static fleet:", staticRep.p99Ms(),
                static_cast<unsigned long long>(staticRep.dropped),
                static_cast<unsigned long long>(staticCost / 1'000'000));
    std::printf("%-18s p99 %6.2f ms  drops %4llu  cost %6llu "
                "Minstance-cycles  (%.0f%% of static; peak %u, "
                "%llu drained batches)\n",
                "autoscaled:", autoRep.p99Ms(),
                static_cast<unsigned long long>(autoRep.dropped),
                static_cast<unsigned long long>(autoCost / 1'000'000),
                100.0 * static_cast<double>(autoCost) /
                    static_cast<double>(staticCost),
                autoRep.autoscaler.peakProvisioned,
                static_cast<unsigned long long>(
                    autoRep.autoscaler.drainedBatches));

    // 5. Machine-readable report of the autoscaled run: the traffic_*
    // and autoscaler_* blocks (incl. the full timeline) ride along.
    std::ostringstream json;
    writeServingJson(json, autoRep);
    std::printf("\nJSON: %s", json.str().c_str());
    return 0;
}
