#!/usr/bin/env bash
# CI entry point: configure + build + test, with warnings-as-errors on
# the serving-runtime subsystem (src/runtime/ is new code held to a
# stricter bar than the seed sources), followed by an ASan+UBSan
# build that re-runs the runtime test suites (the event loop and the
# property/fuzz sweeps are where lifetime/overflow bugs would hide).
# Suitable as a GitHub Actions step:
#
#   - name: Build and test
#     run: ./scripts/ci.sh
#
# Environment:
#   BUILD_DIR      build tree location            (default: build-ci)
#   SAN_BUILD_DIR  sanitizer build tree location  (default: build-asan)
#   JOBS           parallel build jobs            (default: nproc)

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci}"
SAN_BUILD_DIR="${SAN_BUILD_DIR:-build-asan}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DPOINTACC_WERROR=ON

cmake --build "${BUILD_DIR}" -j "${JOBS}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# Serving-runtime acceptance: p99 latency must not increase with fleet
# size, and the two-stage pipeline must beat monolithic occupancy at
# equal fleet size (the bench exits non-zero on violation).
"${BUILD_DIR}/bench_serving" --json "${BUILD_DIR}/BENCH_serving.json"

# ASan+UBSan pass over the runtime test suites. Benchmarks and
# examples are skipped (sanitized simulator runs are slow and the
# simulator itself is covered by its own suites); warnings-as-errors
# stays on for src/runtime/.
cmake -B "${SAN_BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPOINTACC_SANITIZE=ON \
    -DPOINTACC_WERROR=ON \
    -DPOINTACC_BUILD_BENCH=OFF \
    -DPOINTACC_BUILD_EXAMPLES=OFF

cmake --build "${SAN_BUILD_DIR}" -j "${JOBS}" \
    --target test_runtime test_runtime_properties test_report_golden

ctest --test-dir "${SAN_BUILD_DIR}" --output-on-failure -j "${JOBS}" \
    --no-tests=error \
    -R 'test_runtime|test_runtime_properties|test_report_golden'
