#!/usr/bin/env bash
# CI entry point: configure + build + test, with warnings-as-errors on
# the serving-runtime subsystem (src/runtime/ is new code held to a
# stricter bar than the seed sources), the Release-only scale tier and
# simulator-performance floor gate (bench_simperf), the capacity-
# planner gate (bench_serving --sweep plan: planner pick must equal
# exhaustive search with strictly fewer probes), the heterogeneous
# lattice gate (bench_serving --sweep hetero: watt-budgeted server +
# edge composition plan vs the exhaustive lattice, plus uniform-1GHz
# mixed-fleet byte-identity with the frozen cycle-domain engine), the
# closed-loop traffic gate (bench_serving --sweep traffic: static
# plan vs reactive autoscaler over a flash-crowd program), the fault
# injection gate (bench_serving --sweep faults: crash/straggler/
# retry/hedge scenarios, empty-program byte-identity with the frozen
# reference, extended conservation, and an availability plan whose
# spare rides out a crash the nominal fleet fails), the run-ahead gate
# (bench_serving --sweep runahead: cost-aware hold-vs-dispatch must
# dominate pure-eager and pure-hold, the k=1/2/4 depth ladder must be
# monotone, and depth-1/cost-off output must be byte-identical to the
# frozen reference), a
# schema-doc check that
# keeps docs/SERVING_JSON.md in lockstep with writeServingJson and
# writePlanJson, followed by an ASan+UBSan build that re-runs the
# runtime test suites (the event loop and the property/fuzz sweeps are
# where lifetime/overflow bugs would hide), the map-cache bench sweep,
# a sanitized 10^5-request smoke of the discrete-event core, 2-probe
# planner, hetero-lattice, traffic/autoscaler, fault-injection and
# run-ahead smokes, and finally a
# TSan build that runs the executor unit suite, the sharded property
# sweeps and a threaded hetero-lattice smoke with a 4-worker pool (the
# only stage that exercises real thread interleavings — Release gates
# above are also routed through --threads 4, but their byte-identity
# gates would mask a data race that TSan catches directly).
#
# The Release gates pass --threads 4 everywhere the executor has a
# consumer (bench rows, planner speculation, sharded simperf tier,
# property seed loops): every byte-identity gate then pins parallel
# output to the serial reference on every CI run.
# Suitable as a GitHub Actions step:
#
#   - name: Build and test
#     run: ./scripts/ci.sh
#
# Environment:
#   BUILD_DIR       build tree location            (default: build-ci)
#   SAN_BUILD_DIR   sanitizer build tree location  (default: build-asan)
#   TSAN_BUILD_DIR  TSan build tree location       (default: build-tsan)
#   JOBS            parallel build jobs            (default: nproc)

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci}"
SAN_BUILD_DIR="${SAN_BUILD_DIR:-build-asan}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DPOINTACC_WERROR=ON

cmake --build "${BUILD_DIR}" -j "${JOBS}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# Serving-runtime acceptance: p99 latency must not increase with fleet
# size, the two-stage pipeline must beat monolithic occupancy at equal
# fleet size, the kernel-map cache must strictly improve p99 or
# throughput at reuse >= 0.5, and profiling must stay memoized across
# rows (the bench exits non-zero on violation). --threads 4 routes the
# sweep rows through the work-stealing pool; declaration-order merge
# keeps the JSON byte-identical to a serial run.
"${BUILD_DIR}/bench_serving" --threads 4 \
    --json "${BUILD_DIR}/BENCH_serving.json"

# Release-stage scale tier: 10^5-request property sweeps (conservation,
# determinism, byte-identity with the preserved seed engine) that the
# quick ctest pass skips; the seed loops shard across 4 workers.
"${BUILD_DIR}/test_runtime_properties" --scale --threads 4

# Simulator-performance gate (Release, -O2/-O3 -DNDEBUG): the O(log n)
# discrete-event core must clear the stored requests-per-second floor
# on the anchor row (10^6 requests, fleet 16), beat the preserved seed
# engine >= 10x, and match it byte-identically on a shared trace. With
# --threads 4 the sharded tier (fleet 256, 10^7 requests) also runs:
# its merge-determinism gate always applies, and its multi-thread
# requests-per-second floor gates on 4+-core runners. See
# docs/PERFORMANCE.md for the floor-update procedure.
"${BUILD_DIR}/bench_simperf" --quick --threads 4 \
    --json "${BUILD_DIR}/BENCH_simperf.json"

# Capacity-planner gate: on a quick grid the planner's pick must equal
# the exhaustive-search optimum while spending strictly fewer probes
# (within the probe budget). Opt-in sweep, so it gets its own
# invocation and its own JSON. --threads 4 turns on speculative
# probing, and the bench's differential gate re-plans serially and
# requires byte-identical plan JSON.
"${BUILD_DIR}/bench_serving" --sweep plan --quick --threads 4 \
    --json "${BUILD_DIR}/BENCH_serving_plan.json"

# Heterogeneous-lattice gate: plan a watt-budgeted server + edge
# composition under the watts objective. The budget must actually
# bind, the lattice pick must equal the exhaustive lattice optimum
# with strictly fewer probes, a --threads 4 plan must serialize
# byte-identically to a serial re-plan, and a mixed-class fleet at
# uniform 1 GHz must serve byte-identically to the frozen
# cycle-domain reference engine (the ns-axis identity gate).
"${BUILD_DIR}/bench_serving" --sweep hetero --quick --threads 4 \
    --json "${BUILD_DIR}/BENCH_serving_hetero.json"

# Closed-loop traffic gate: plan a static fleet for a flash-crowd
# traffic program, then serve the same program reactively with the
# autoscaler. The static fleet must hold the SLO through the spike;
# the autoscaler must actually scale, converge after the crowd passes,
# conserve requests, and save instance-cycles vs static provisioning.
"${BUILD_DIR}/bench_serving" --sweep traffic --quick \
    --json "${BUILD_DIR}/BENCH_serving_traffic.json"

# Fault-injection gate: crash / straggler / MTBF / hedged scenarios
# with retries, the empty-program byte-identity check against the
# frozen reference engine, extended conservation (admitted =
# completed + failed + leftover, goodput <= throughput) on every row,
# and the availability plan: replanning with a mid-horizon crash in
# the search space must pay for a spare, the nominal fleet must miss
# the SLO under that crash, and the availability fleet must hold it.
"${BUILD_DIR}/bench_serving" --sweep faults --quick --threads 4 \
    --json "${BUILD_DIR}/BENCH_serving_faults.json"

# Run-ahead gate: the cost-aware hold-vs-dispatch policy must dominate
# both blind endpoints of the hold spectrum (pure-eager and pure-hold)
# at the capacity knee, the k=1/2/4 mapped-output-buffer ladder must
# be monotone (throughput never drops, p99 never rises), and depth 1
# with pricing off must serve byte-identically to the frozen reference
# engine.
"${BUILD_DIR}/bench_serving" --sweep runahead --quick --threads 4 \
    --json "${BUILD_DIR}/BENCH_serving_runahead.json"

# Schema-doc check: every JSON key writeServingJson and writePlanJson
# emit must be documented (in backticks) in docs/SERVING_JSON.md, so
# the published schemas can never silently drift from the writers.
echo "== serving/plan JSON schema doc check =="
missing=0
for key in $(sed -nE 's/.*w\.(field|key)\("([a-z0-9_]+)".*/\2/p' \
                 src/runtime/serving_stats.cpp \
                 src/runtime/planner.cpp | sort -u); do
    if ! grep -q "\`${key}\`" docs/SERVING_JSON.md; then
        echo "error: JSON key '${key}' is missing from docs/SERVING_JSON.md"
        missing=1
    fi
done
if [ "${missing}" -ne 0 ]; then
    exit 1
fi
echo "all writeServingJson/writePlanJson keys documented"

# ASan+UBSan pass over the runtime test suites plus the map-cache
# bench sweep. Examples and the remaining benchmarks are skipped
# (sanitized simulator runs are slow and the simulator itself is
# covered by its own suites); bench_serving builds so the cache sweep
# runs sanitized (--quick bounds the horizon, --sweep cache skips the
# sweeps whose gates the unsanitized run already enforced);
# warnings-as-errors stays on for src/runtime/.
cmake -B "${SAN_BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPOINTACC_SANITIZE=ON \
    -DPOINTACC_WERROR=ON \
    -DPOINTACC_BUILD_BENCH=ON \
    -DPOINTACC_BUILD_EXAMPLES=OFF

cmake --build "${SAN_BUILD_DIR}" -j "${JOBS}" \
    --target test_runtime test_runtime_properties test_report_golden \
             test_executor bench_serving bench_simperf

ctest --test-dir "${SAN_BUILD_DIR}" --output-on-failure -j "${JOBS}" \
    --no-tests=error \
    -R 'test_runtime|test_runtime_properties|test_report_golden|test_executor'

"${SAN_BUILD_DIR}/bench_serving" --sweep cache --quick --no-json

# Sanitized 10^5-request smoke of the discrete-event core: one
# 10^5-request row through the heap loop, indexed queue and streaming
# generator under ASan+UBSan. --smoke applies no wall-clock floor
# (a sanitized floor would measure the sanitizer, not the simulator).
"${SAN_BUILD_DIR}/bench_simperf" --smoke --no-json

# Sanitized 2-probe smoke of the capacity planner: a 1-combo, 2-size
# exhaustive micro-grid through the full plan/probe/JSON path under
# ASan+UBSan (the unsanitized plan gate above already enforced search
# quality).
"${SAN_BUILD_DIR}/bench_serving" --sweep plan --smoke --no-json

# Sanitized smoke of the heterogeneous lattice: a tiny two-kind
# composition grid through the exhaustive lattice search, the
# composition JSON and the mixed-fleet 1 GHz identity check under
# ASan+UBSan (the unsanitized hetero gate above enforced search
# quality and the probe budget).
"${SAN_BUILD_DIR}/bench_serving" --sweep hetero --smoke --no-json

# Sanitized smoke of the traffic/autoscaler closed loop: a short
# flash-crowd program through planning, the piecewise-rate stream,
# scaling events and graceful drain under ASan+UBSan (structural
# checks only; the unsanitized traffic gate above enforced the SLO
# and savings acceptance).
"${SAN_BUILD_DIR}/bench_serving" --sweep traffic --smoke --no-json

# Sanitized smoke of fault injection: short-horizon crash / straggler
# / MTBF / hedge scenarios through the kill/retry/hedge event paths,
# the busy-counter give-backs and the fault JSON block under
# ASan+UBSan (structural plan checks only; the unsanitized faults
# gate above enforced the availability outcome).
"${SAN_BUILD_DIR}/bench_serving" --sweep faults --smoke --no-json

# Sanitized smoke of run-ahead + cost-aware dispatch: short-horizon
# trio and depth-ladder rows through the staged-buffer cascade, the
# priced hold path and the reference byte-identity check under
# ASan+UBSan (structural checks only; the unsanitized runahead gate
# above enforced dominance).
"${SAN_BUILD_DIR}/bench_serving" --sweep runahead --smoke --no-json

# TSan pass over the threaded paths: the executor unit suite (steal
# races, exception propagation, nested get, destructor drain), the
# property sweeps with a 4-worker pool (the seed loops shard, and
# PlannerProperties runs speculative planning — including the hetero
# composition lattice — against SimServiceModel's shared_mutex-guarded
# memo caches), a threaded hetero-lattice smoke, which is the one
# path where concurrent probes profile two accelerator classes plus an
# overclocked variant through the shared memo, and a threaded
# run-ahead smoke covering the staged cascade and priced hold paths. TSan excludes ASan by
# construction, so it needs its own tree; the remaining benches and
# the examples are skipped (their byte-identity gates ran above, and a
# TSan'd 10^7-request tier would dominate CI wall-clock without adding
# interleaving coverage the suites don't already have).
cmake -B "${TSAN_BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPOINTACC_TSAN=ON \
    -DPOINTACC_WERROR=ON \
    -DPOINTACC_BUILD_BENCH=ON \
    -DPOINTACC_BUILD_EXAMPLES=OFF

cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" \
    --target test_executor test_runtime_properties bench_serving

"${TSAN_BUILD_DIR}/test_executor"

"${TSAN_BUILD_DIR}/test_runtime_properties" --threads 4

"${TSAN_BUILD_DIR}/bench_serving" --sweep hetero --smoke --threads 4 \
    --no-json

# Threaded run-ahead smoke under TSan: the trio and depth-ladder rows
# run as pool tasks, so concurrent schedulers exercise the staged
# cascade and the priced hold path against the shared profiling memo.
"${TSAN_BUILD_DIR}/bench_serving" --sweep runahead --smoke --threads 4 \
    --no-json
