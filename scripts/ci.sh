#!/usr/bin/env bash
# CI entry point: configure + build + test, with warnings-as-errors on
# the serving-runtime subsystem (src/runtime/ is new code held to a
# stricter bar than the seed sources). Suitable as a GitHub Actions
# step:
#
#   - name: Build and test
#     run: ./scripts/ci.sh
#
# Environment:
#   BUILD_DIR  build tree location   (default: build-ci)
#   JOBS       parallel build jobs   (default: nproc)

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DPOINTACC_WERROR=ON

cmake --build "${BUILD_DIR}" -j "${JOBS}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# Serving-runtime acceptance: p99 latency must not increase with fleet
# size (the bench exits non-zero on violation).
"${BUILD_DIR}/bench_serving" --json "${BUILD_DIR}/BENCH_serving.json"
